#include "service/query_server.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "data/columnar.h"
#include "marginals/marginal_cache.h"
#include "obs/event_log.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ireduct {

namespace {

// Batch-width histogram bounds: powers of two 1..128. Must match the
// registration in RegisterStandardMetrics (both call ExponentialBuckets
// with these arguments).
std::span<const double> BatchWidthBounds() {
  static const std::vector<double> bounds =
      obs::ExponentialBuckets(1, 2, 8);
  return bounds;
}

}  // namespace

Result<std::unique_ptr<QueryServer>> QueryServer::Create(
    QueryServerConfig config) {
  if (config.workers < 1) {
    return Status::InvalidArgument("workers must be >= 1");
  }
  if (config.max_queue < 1) {
    return Status::InvalidArgument("max_queue must be >= 1");
  }
  if (config.max_inflight_per_tenant < 1) {
    return Status::InvalidArgument("max_inflight_per_tenant must be >= 1");
  }
  if (config.max_batch < 1) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  if (config.retry_after_ms < 0) {
    return Status::InvalidArgument("retry_after_ms must be >= 0");
  }
  return std::unique_ptr<QueryServer>(new QueryServer(std::move(config)));
}

QueryServer::QueryServer(QueryServerConfig config)
    : config_(std::move(config)), pool_(config_.workers) {
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

QueryServer::~QueryServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  queue_drained_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // The dispatcher exited without draining; every still-queued request
  // must resolve or its waiters would hang on a broken promise.
  for (Request& request : queue_) {
    Reject(request, Status::FailedPrecondition("query server stopped"));
  }
}

Status QueryServer::AddDataset(const std::string& name, Dataset dataset) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  const uint64_t fingerprint = dataset.Fingerprint();
  std::lock_guard<std::mutex> lock(mu_);
  if (datasets_.count(name) != 0) {
    return Status::FailedPrecondition("dataset '" + name +
                                      "' already registered");
  }
  datasets_.emplace(name, DatasetState{std::move(dataset), fingerprint});
  return Status::OK();
}

Status QueryServer::AddDatasetFile(const std::string& name,
                                   const std::string& path) {
  IREDUCT_ASSIGN_OR_RETURN(ColumnarFile file, ColumnarFile::Open(path));
  IREDUCT_ASSIGN_OR_RETURN(Dataset dataset, file.ToDataset());
  // The file header records the content fingerprint, so registering an
  // mmap-backed dataset costs no extra full scan.
  const uint64_t fingerprint = file.fingerprint();
  std::lock_guard<std::mutex> lock(mu_);
  if (datasets_.count(name) != 0) {
    return Status::FailedPrecondition("dataset '" + name +
                                      "' already registered");
  }
  datasets_.emplace(name, DatasetState{std::move(dataset), fingerprint});
  return Status::OK();
}

const Dataset* QueryServer::dataset(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : &it->second.dataset;
}

Status QueryServer::OpenTenant(const std::string& tenant,
                               const std::string& dataset_name,
                               double epsilon_budget, uint64_t seed) {
  if (tenant.empty()) {
    return Status::InvalidArgument("tenant name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto ds = datasets_.find(dataset_name);
  if (ds == datasets_.end()) {
    return Status::NotFound("dataset '" + dataset_name + "' is not registered");
  }
  if (tenants_.count(tenant) != 0) {
    return Status::FailedPrecondition("tenant '" + tenant +
                                      "' is already open");
  }
  auto state = std::make_unique<TenantState>();
  state->name = tenant;
  state->dataset_name = dataset_name;
  state->fingerprint = ds->second.fingerprint;
  state->dataset = &ds->second.dataset;
  if (config_.journal_dir.empty()) {
    IREDUCT_ASSIGN_OR_RETURN(
        PrivateQuerySession session,
        PrivateQuerySession::Create(state->dataset, epsilon_budget, seed));
    state->session =
        std::make_unique<PrivateQuerySession>(std::move(session));
  } else {
    IREDUCT_ASSIGN_OR_RETURN(
        PrivateQuerySession session,
        PrivateQuerySession::CreateWithJournal(
            state->dataset, epsilon_budget, seed,
            config_.journal_dir + "/" + tenant + ".journal"));
    state->session =
        std::make_unique<PrivateQuerySession>(std::move(session));
  }
  tenants_.emplace(tenant, std::move(state));
  IREDUCT_METRIC_GAUGE_SET("server.tenants",
                           static_cast<double>(tenants_.size()));
  IREDUCT_LOG(kInfo) << "opened tenant '" << tenant << "' on dataset '"
                     << dataset_name << "' with budget " << epsilon_budget;
  return Status::OK();
}

Status QueryServer::ResumeTenant(const std::string& tenant,
                                 const std::string& dataset_name,
                                 uint64_t seed) {
  if (config_.journal_dir.empty()) {
    return Status::FailedPrecondition(
        "ResumeTenant requires a journaled server (config.journal_dir)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto ds = datasets_.find(dataset_name);
  if (ds == datasets_.end()) {
    return Status::NotFound("dataset '" + dataset_name + "' is not registered");
  }
  if (tenants_.count(tenant) != 0) {
    return Status::FailedPrecondition("tenant '" + tenant +
                                      "' is already open");
  }
  auto state = std::make_unique<TenantState>();
  state->name = tenant;
  state->dataset_name = dataset_name;
  state->fingerprint = ds->second.fingerprint;
  state->dataset = &ds->second.dataset;
  IREDUCT_ASSIGN_OR_RETURN(
      PrivateQuerySession session,
      PrivateQuerySession::ResumeWithJournal(
          state->dataset, seed,
          config_.journal_dir + "/" + tenant + ".journal"));
  state->session = std::make_unique<PrivateQuerySession>(std::move(session));
  tenants_.emplace(tenant, std::move(state));
  IREDUCT_METRIC_GAUGE_SET("server.tenants",
                           static_cast<double>(tenants_.size()));
  return Status::OK();
}

Result<QueryServer::TenantBudget> QueryServer::GetBudget(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("tenant '" + tenant + "' is not open");
  }
  TenantBudget out;
  out.budget = it->second->session->budget();
  out.spent = it->second->session->spent();
  out.remaining = it->second->session->remaining();
  return out;
}

void QueryServer::Reject(Request& request, Status status) {
  if (request.kind == RequestKind::kMarginals) {
    request.marginals_promise.set_value(std::move(status));
  } else {
    request.count_promise.set_value(std::move(status));
  }
}

void QueryServer::Admit(const std::string& tenant_name, Request request) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) {
    lock.unlock();
    Reject(request, Status::FailedPrecondition("query server stopped"));
    return;
  }
  const auto it = tenants_.find(tenant_name);
  if (it == tenants_.end()) {
    lock.unlock();
    Reject(request,
           Status::NotFound("tenant '" + tenant_name + "' is not open"));
    return;
  }
  TenantState* tenant = it->second.get();
  const char* shed_reason = nullptr;
  if (queue_.size() >= config_.max_queue) {
    ++stats_.shed_queue_full;
    IREDUCT_METRIC_COUNT("server.shed_queue_full", 1);
    shed_reason = "queue_full";
  } else if (tenant->inflight >= config_.max_inflight_per_tenant) {
    ++stats_.shed_tenant_cap;
    IREDUCT_METRIC_COUNT("server.shed_tenant_cap", 1);
    shed_reason = "tenant_cap";
  }
  if (shed_reason != nullptr) {
    const size_t depth = queue_.size();
    lock.unlock();
    if (obs::EventLog* log = obs::EventLog::Get()) {
      log->Emit("server.shed", {{"tenant", tenant_name},
                                {"reason", shed_reason},
                                {"queue_depth", static_cast<uint64_t>(depth)}});
    }
    // Shed before the request touches a session: nothing has been charged
    // and nothing will be — the caller can retry verbatim.
    Reject(request,
           Status::ResourceExhausted(
               std::string("admission rejected (") + shed_reason +
               "); retry after " + std::to_string(config_.retry_after_ms) +
               "ms"));
    return;
  }
  request.tenant = tenant;
  ++tenant->inflight;
  ++stats_.admitted;
  queue_.push_back(std::move(request));
  IREDUCT_METRIC_COUNT("server.admitted", 1);
  IREDUCT_METRIC_GAUGE_SET("server.queue_depth",
                           static_cast<double>(queue_.size()));
  lock.unlock();
  work_ready_.notify_one();
}

std::future<Result<MarginalRelease>> QueryServer::SubmitMarginals(
    const std::string& tenant, std::vector<MarginalSpec> specs,
    MechanismSpec mechanism, double epsilon, double delta, int lambda_steps) {
  Request request;
  request.kind = RequestKind::kMarginals;
  request.specs = std::move(specs);
  request.mechanism = std::move(mechanism);
  request.epsilon = epsilon;
  request.delta = delta;
  request.lambda_steps = lambda_steps;
  std::future<Result<MarginalRelease>> future =
      request.marginals_promise.get_future();
  Admit(tenant, std::move(request));
  return future;
}

std::future<Result<double>> QueryServer::SubmitCount(const std::string& tenant,
                                                     ConjunctiveQuery query,
                                                     double epsilon) {
  Request request;
  request.kind = RequestKind::kCount;
  request.query = std::move(query);
  request.epsilon = epsilon;
  std::future<Result<double>> future = request.count_promise.get_future();
  Admit(tenant, std::move(request));
  return future;
}

Result<MarginalRelease> QueryServer::PublishMarginals(
    const std::string& tenant, std::vector<MarginalSpec> specs,
    MechanismSpec mechanism, double epsilon, double delta, int lambda_steps) {
  return SubmitMarginals(tenant, std::move(specs), std::move(mechanism),
                         epsilon, delta, lambda_steps)
      .get();
}

Result<double> QueryServer::CountQuery(const std::string& tenant,
                                       ConjunctiveQuery query,
                                       double epsilon) {
  return SubmitCount(tenant, std::move(query), epsilon).get();
}

void QueryServer::Pause() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
  }
  work_ready_.notify_all();
}

void QueryServer::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_ready_.notify_all();
}

void QueryServer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  queue_drained_.wait(lock, [this] {
    return stopping_ || (queue_.empty() && executing_ == 0);
  });
}

QueryServerStats QueryServer::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryServerStats out = stats_;
  out.queue_depth = queue_.size();
  out.num_tenants = tenants_.size();
  out.num_datasets = datasets_.size();
  return out;
}

void QueryServer::DispatcherLoop() {
  while (true) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (stopping_) return;
      const size_t width =
          config_.batching ? std::min(queue_.size(), config_.max_batch)
                           : size_t{1};
      batch.reserve(width);
      for (size_t i = 0; i < width; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      executing_ += batch.size();
      ++stats_.batches;
      stats_.max_batch_width =
          std::max<uint64_t>(stats_.max_batch_width, batch.size());
      IREDUCT_METRIC_GAUGE_SET("server.queue_depth",
                               static_cast<double>(queue_.size()));
    }
    IREDUCT_METRIC_COUNT("server.batches", 1);
    IREDUCT_METRIC_OBSERVE_BUCKETS("server.batch_width",
                                   static_cast<double>(batch.size()),
                                   BatchWidthBounds());
    ExecuteBatch(std::move(batch));
  }
}

void QueryServer::ExecuteBatch(std::vector<Request> batch) {
  obs::TraceSpan span("server.batch");
  span.Arg("width", static_cast<double>(batch.size()));

  // Phase A — coalesce the marginal requests by dataset fingerprint and
  // derive every request's *true* tables in one fused pass per dataset,
  // shared through the process-wide MarginalCache. True tables are
  // deterministic integer counts with an exact parity guarantee against
  // Marginal::Compute, so precomputing them here cannot change a single
  // response byte; it only removes redundant full-dataset scans.
  std::vector<std::optional<std::vector<Marginal>>> precomputed(batch.size());
  uint64_t fused_groups = 0;
  if (config_.batching) {
    // fingerprint → indices of batch requests that read that dataset.
    std::map<uint64_t, std::vector<size_t>> groups;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].kind == RequestKind::kMarginals) {
        groups[batch[i].tenant->fingerprint].push_back(i);
      }
    }
    for (const auto& [fingerprint, members] : groups) {
      // Union of the group's specs, first-seen order, deduplicated on the
      // attribute list (the cache key); every request's tables are copies
      // sliced back out of the union result.
      std::vector<MarginalSpec> union_specs;
      std::map<std::vector<uint32_t>, size_t> spec_index;
      for (const size_t i : members) {
        for (const MarginalSpec& spec : batch[i].specs) {
          if (spec_index.emplace(spec.attributes, union_specs.size()).second) {
            union_specs.push_back(spec);
          }
        }
      }
      const Dataset* dataset = batch[members.front()].tenant->dataset;
      Result<std::vector<Marginal>> tables =
          MarginalCache::Global().GetOrCompute(fingerprint, *dataset,
                                               union_specs, &pool_);
      if (!tables.ok()) {
        // A bad spec anywhere in the union poisons the fused pass; fall
        // back to the classic per-request path so each request reports
        // its own error (identical to unbatched behavior).
        continue;
      }
      ++fused_groups;
      for (const size_t i : members) {
        std::vector<Marginal> mine;
        mine.reserve(batch[i].specs.size());
        for (const MarginalSpec& spec : batch[i].specs) {
          mine.push_back((*tables)[spec_index.at(spec.attributes)]);
        }
        precomputed[i] = std::move(mine);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.fused_passes += fused_groups;
  }
  if (obs::EventLog* log = obs::EventLog::Get()) {
    log->Emit("server.batch",
              {{"width", static_cast<uint64_t>(batch.size())},
               {"fused_groups", fused_groups}});
  }

  // Phase B — resolve every request strictly in admission order on this
  // one thread. Each session's RNG and accountant are consumed exactly as
  // a serial per-tenant run would consume them, which is the whole
  // determinism contract.
  for (size_t i = 0; i < batch.size(); ++i) {
    IREDUCT_SCOPED_TIMER(request_timer, "server.request_seconds");
    ExecuteOne(batch[i],
               precomputed[i].has_value() ? &*precomputed[i] : nullptr);
    FinishRequest(batch[i].tenant);
  }
}

void QueryServer::ExecuteOne(Request& request,
                             std::vector<Marginal>* precomputed) {
  PrivateQuerySession* session = request.tenant->session.get();
  if (request.kind == RequestKind::kCount) {
    request.count_promise.set_value(
        session->CountQuery(request.query, request.epsilon));
    return;
  }
  if (precomputed != nullptr) {
    request.marginals_promise.set_value(session->PublishMarginalsPrecomputed(
        std::move(*precomputed), std::move(request.mechanism),
        request.epsilon, request.delta, request.lambda_steps));
  } else {
    request.marginals_promise.set_value(session->PublishMarginals(
        request.specs, std::move(request.mechanism), request.epsilon,
        request.delta, request.lambda_steps));
  }
}

void QueryServer::FinishRequest(TenantState* tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  --tenant->inflight;
  --executing_;
  ++stats_.completed;
  if (queue_.empty() && executing_ == 0) {
    queue_drained_.notify_all();
  }
}

}  // namespace ireduct
