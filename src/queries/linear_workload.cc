#include "queries/linear_workload.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "common/numeric.h"

namespace ireduct {

void SparseMatrix::Builder::Add(uint32_t row, uint32_t col, double value) {
  entries_.push_back(Entry{row, col, value});
}

Result<SparseMatrix> SparseMatrix::Builder::Build() && {
  for (const Entry& e : entries_) {
    if (e.row >= rows_ || e.col >= cols_) {
      return Status::OutOfRange("sparse entry (" + std::to_string(e.row) +
                                ", " + std::to_string(e.col) +
                                ") outside matrix shape");
    }
    if (!std::isfinite(e.value)) {
      return Status::InvalidArgument("sparse entries must be finite");
    }
  }
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.row != b.row ? a.row < b.row : a.col < b.col;
                   });
  SparseMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  m.row_ptr_.assign(rows_ + 1, 0);
  m.cols_idx_.reserve(entries_.size());
  m.values_.reserve(entries_.size());
  size_t i = 0;
  for (size_t r = 0; r < rows_; ++r) {
    while (i < entries_.size() && entries_[i].row == r) {
      double value = entries_[i].value;
      const uint32_t col = entries_[i].col;
      ++i;
      while (i < entries_.size() && entries_[i].row == r &&
             entries_[i].col == col) {
        value += entries_[i].value;
        ++i;
      }
      if (value != 0.0) {
        m.cols_idx_.push_back(col);
        m.values_.push_back(value);
      }
    }
    m.row_ptr_[r + 1] = static_cast<uint32_t>(m.cols_idx_.size());
  }
  return m;
}

SparseMatrix SparseMatrix::Identity(size_t n) {
  SparseMatrix m;
  m.rows_ = n;
  m.cols_ = n;
  m.row_ptr_.resize(n + 1);
  m.cols_idx_.resize(n);
  m.values_.assign(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    m.row_ptr_[i] = static_cast<uint32_t>(i);
    m.cols_idx_[i] = static_cast<uint32_t>(i);
  }
  m.row_ptr_[n] = static_cast<uint32_t>(n);
  return m;
}

void SparseMatrix::MatVec(std::span<const double> x,
                          std::span<double> out) const {
  for (size_t r = 0; r < rows_; ++r) {
    KahanSum acc;
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc.Add(values_[k] * x[cols_idx_[k]]);
    }
    out[r] = acc.value();
  }
}

void SparseMatrix::TMatVec(std::span<const double> y,
                           std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double yr = y[r];
    if (yr == 0.0) continue;
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out[cols_idx_[k]] += values_[k] * yr;
    }
  }
}

void SparseMatrix::ColumnAbsSums(std::span<const double> row_weights,
                                 std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double w = row_weights.empty() ? 1.0 : row_weights[r];
    for (uint32_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out[cols_idx_[k]] += std::abs(values_[k]) * w;
    }
  }
}

Result<LinearWorkload> LinearWorkload::Create(SparseMatrix w,
                                              std::vector<double> histogram,
                                              NeighborModel model) {
  if (w.rows() == 0) {
    return Status::InvalidArgument("linear workload needs at least one query");
  }
  if (w.cols() != histogram.size()) {
    return Status::InvalidArgument(
        "workload matrix has " + std::to_string(w.cols()) +
        " columns but the histogram has " + std::to_string(histogram.size()) +
        " bins");
  }
  for (double v : histogram) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("histogram bins must be finite");
    }
  }
  return LinearWorkload(std::move(w), std::move(histogram), model);
}

std::vector<double> LinearWorkload::Answers() const {
  std::vector<double> out(w_.rows());
  w_.MatVec(histogram_, out);
  return out;
}

double LinearWorkload::TupleSensitivity(
    std::span<const double> per_query_scales) const {
  for (double s : per_query_scales) {
    if (!(s > 0)) return std::numeric_limits<double>::infinity();
  }
  std::vector<double> inv(w_.rows());
  for (size_t i = 0; i < inv.size(); ++i) inv[i] = 1.0 / per_query_scales[i];
  std::vector<double> col(w_.cols());
  w_.ColumnAbsSums(inv, col);
  double max_col = 0;
  for (double c : col) max_col = std::max(max_col, c);
  return tuple_factor() * max_col;
}

double LinearWorkload::MaxColumnL1() const {
  std::vector<double> col(w_.cols());
  w_.ColumnAbsSums({}, col);
  double max_col = 0;
  for (double c : col) max_col = std::max(max_col, c);
  return max_col;
}

Result<Workload> LinearWorkload::ToWorkload() const {
  auto self = std::make_shared<const LinearWorkload>(*this);
  const size_t m = num_queries();
  std::vector<QueryGroup> groups;
  groups.reserve(m);
  for (uint32_t i = 0; i < m; ++i) {
    double max_abs = 0;
    for (double v : w_.row_values(i)) max_abs = std::max(max_abs, std::abs(v));
    groups.push_back(
        QueryGroup{"q" + std::to_string(i), i, i + 1,
                   tuple_factor() * std::max(max_abs, 1e-300)});
  }
  // Singleton groups: group scales == per-query scales, so the closure can
  // hand them to TupleSensitivity directly.
  IREDUCT_ASSIGN_OR_RETURN(
      Workload workload,
      Workload::CreateWithSensitivityFn(
          Answers(), std::move(groups),
          [self](std::span<const double> scales) {
            return self->TupleSensitivity(scales);
          }));
  workload.SetLinear(self);
  return workload;
}

}  // namespace ireduct
