#include "queries/range_workload.h"

#include <algorithm>
#include <cmath>

#include "common/numeric.h"

namespace ireduct {

Result<double> RangeCountAnswer(std::span<const double> histogram,
                                const BinRange& range) {
  if (range.lo > range.hi || range.hi >= histogram.size()) {
    return Status::OutOfRange("invalid bin range");
  }
  KahanSum acc;
  for (uint32_t b = range.lo; b <= range.hi; ++b) acc.Add(histogram[b]);
  return acc.value();
}

Result<LinearWorkload> RangeLinearWorkload(std::span<const double> histogram,
                                           std::span<const BinRange> ranges) {
  if (ranges.empty()) {
    return Status::InvalidArgument("need at least one range query");
  }
  SparseMatrix::Builder builder(ranges.size(), histogram.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    const BinRange& r = ranges[i];
    if (r.lo > r.hi || r.hi >= histogram.size()) {
      return Status::OutOfRange("invalid bin range");
    }
    for (uint32_t b = r.lo; b <= r.hi; ++b) {
      builder.Add(static_cast<uint32_t>(i), b, 1.0);
    }
  }
  IREDUCT_ASSIGN_OR_RETURN(SparseMatrix w, std::move(builder).Build());
  return LinearWorkload::Create(
      std::move(w), std::vector<double>(histogram.begin(), histogram.end()),
      NeighborModel::kAddRemove);
}

Result<Workload> BuildRangeWorkload(std::span<const double> histogram,
                                    std::span<const BinRange> ranges,
                                    RangeSensitivity sensitivity) {
  if (ranges.empty()) {
    return Status::InvalidArgument("need at least one range query");
  }
  if (sensitivity == RangeSensitivity::kAdditive) {
    std::vector<double> answers;
    answers.reserve(ranges.size());
    for (const BinRange& r : ranges) {
      IREDUCT_ASSIGN_OR_RETURN(double answer, RangeCountAnswer(histogram, r));
      answers.push_back(answer);
    }
    return Workload::PerQuery(std::move(answers), /*sensitivity_coeff=*/1.0);
  }
  IREDUCT_ASSIGN_OR_RETURN(LinearWorkload linear,
                           RangeLinearWorkload(histogram, ranges));
  return linear.ToWorkload();
}

std::vector<BinRange> PrefixRanges(size_t bins) {
  std::vector<BinRange> ranges;
  ranges.reserve(bins);
  for (uint32_t b = 0; b < bins; ++b) {
    ranges.push_back(BinRange{0, b});
  }
  return ranges;
}

std::vector<BinRange> SlidingWindowRanges(size_t bins, size_t width,
                                          size_t count) {
  std::vector<BinRange> ranges;
  ranges.reserve(count);
  const size_t w = std::min(std::max<size_t>(width, 1), bins);
  const size_t starts = bins - w + 1;
  for (size_t i = 0; i < count; ++i) {
    const uint32_t lo = static_cast<uint32_t>(i % starts);
    ranges.push_back(BinRange{lo, static_cast<uint32_t>(lo + w - 1)});
  }
  return ranges;
}

Result<Workload> DisjointHistogramWorkload(std::span<const double> histogram,
                                           size_t groups_of) {
  if (histogram.empty() || groups_of == 0) {
    return Status::InvalidArgument("histogram and group size must be set");
  }
  std::vector<double> answers(histogram.begin(), histogram.end());
  std::vector<QueryGroup> groups;
  for (uint32_t begin = 0; begin < answers.size();
       begin += static_cast<uint32_t>(groups_of)) {
    const uint32_t end = std::min<uint32_t>(
        begin + static_cast<uint32_t>(groups_of),
        static_cast<uint32_t>(answers.size()));
    // The additive coefficient 2 would be used by mechanisms' heuristics;
    // the exact GS below overrides the budget arithmetic.
    groups.push_back(
        QueryGroup{"bins" + std::to_string(begin), begin, end, 2.0});
  }
  return Workload::CreateWithSensitivityFn(
      std::move(answers), std::move(groups),
      [](std::span<const double> scales) {
        double min_scale = scales[0];
        for (double s : scales) min_scale = std::min(min_scale, s);
        return 2.0 / min_scale;
      });
}

std::vector<BinRange> RandomRanges(size_t bins, size_t count, BitGen& gen) {
  std::vector<BinRange> ranges;
  ranges.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // Geometric spread of lengths: len = 2^k capped at bins.
    const uint64_t max_pow = static_cast<uint64_t>(std::log2(bins)) + 1;
    const uint64_t len = std::min<uint64_t>(
        bins, uint64_t{1} << gen.UniformInt(max_pow));
    const uint32_t lo =
        static_cast<uint32_t>(gen.UniformInt(bins - len + 1));
    ranges.push_back(
        BinRange{lo, static_cast<uint32_t>(lo + len - 1)});
  }
  return ranges;
}

}  // namespace ireduct
