#include "queries/strategy.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/numeric.h"

namespace ireduct {

namespace {

bool IsPowerOfTwo(size_t n) { return n > 0 && (n & (n - 1)) == 0; }

size_t PadPow2(size_t n) {
  size_t m = 1;
  while (m < n) m *= 2;
  return m;
}

// Work cap for the dense/per-column reconstruction loops.
constexpr size_t kVarianceWorkCap = size_t{1} << 26;

}  // namespace

Result<std::vector<double>> HaarTransform(std::span<const double> values) {
  if (!IsPowerOfTwo(values.size())) {
    return Status::InvalidArgument("length must be a power of two");
  }
  const size_t m = values.size();
  // Subtree averages in heap order: avg[v] for v in [1, 2m); leaves at
  // [m, 2m).
  std::vector<double> avg(2 * m);
  for (size_t i = 0; i < m; ++i) avg[m + i] = values[i];
  for (size_t v = m - 1; v >= 1; --v) {
    avg[v] = (avg[2 * v] + avg[2 * v + 1]) / 2;
  }
  std::vector<double> coeffs(m);
  coeffs[0] = avg[1];
  for (size_t v = 1; v < m; ++v) {
    coeffs[v] = (avg[2 * v] - avg[2 * v + 1]) / 2;
  }
  return coeffs;
}

Result<std::vector<double>> HaarReconstruct(
    std::span<const double> coefficients) {
  if (!IsPowerOfTwo(coefficients.size())) {
    return Status::InvalidArgument("length must be a power of two");
  }
  const size_t m = coefficients.size();
  // Descend: node v's subtree average a splits into left a + d_v and
  // right a - d_v.
  std::vector<double> avg(2 * m);
  avg[1] = coefficients[0];
  for (size_t v = 1; v < m; ++v) {
    avg[2 * v] = avg[v] + coefficients[v];
    avg[2 * v + 1] = avg[v] - coefficients[v];
  }
  return std::vector<double>(avg.begin() + m, avg.end());
}

Strategy Strategy::Identity(size_t n) {
  Strategy s;
  s.kind_ = Kind::kIdentity;
  s.n_ = n;
  s.padded_ = n;
  s.matrix_ = SparseMatrix::Identity(n);
  s.multipliers_.assign(n, 1.0);
  return s;
}

Strategy Strategy::Tree(size_t n) {
  Strategy s;
  s.kind_ = Kind::kTree;
  s.n_ = n;
  s.padded_ = PadPow2(n);
  const size_t m = s.padded_;
  SparseMatrix::Builder builder(2 * m - 1, n);
  for (uint32_t bin = 0; bin < n; ++bin) {
    for (size_t v = m + bin; v >= 1; v /= 2) {
      builder.Add(static_cast<uint32_t>(v - 1), bin, 1.0);
    }
  }
  s.matrix_ = std::move(builder).Build().value();
  s.multipliers_.assign(2 * m - 1, 1.0);
  return s;
}

Strategy Strategy::Haar(size_t n) {
  Strategy s;
  s.kind_ = Kind::kHaar;
  s.n_ = n;
  s.padded_ = PadPow2(n);
  const size_t m = s.padded_;
  SparseMatrix::Builder builder(m, n);
  for (uint32_t bin = 0; bin < n; ++bin) {
    builder.Add(0, bin, 1.0 / m);
    size_t v = m + bin;
    double leaves = 2.0;  // subtree leaf count of the node being climbed to
    while (v > 1) {
      const size_t parent = v / 2;
      const double sign = (v % 2 == 0) ? 1.0 : -1.0;
      builder.Add(static_cast<uint32_t>(parent), bin, sign / leaves);
      v = parent;
      leaves *= 2;
    }
  }
  s.matrix_ = std::move(builder).Build().value();
  // Natural multipliers are the Privelet weights 1/W(c), walked with the
  // same level bookkeeping as the legacy publisher.
  s.multipliers_.assign(m, 0.0);
  s.multipliers_[0] = 1.0 / m;
  size_t level_size = 1;
  size_t subtree_leaves = m;
  for (size_t v = 1; v < m; ++v) {
    if (v >= 2 * level_size) {
      level_size *= 2;
      subtree_leaves /= 2;
    }
    s.multipliers_[v] = 1.0 / subtree_leaves;
  }
  return s;
}

Result<Strategy> Strategy::Explicit(SparseMatrix a) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("explicit strategy must be non-empty");
  }
  if (a.cols() > kExplicitDomainCap) {
    return Status::InvalidArgument(
        "explicit strategy domain too large for dense reconstruction (" +
        std::to_string(a.cols()) + " > " +
        std::to_string(kExplicitDomainCap) + ")");
  }
  Strategy s;
  s.kind_ = Kind::kExplicit;
  s.n_ = a.cols();
  s.padded_ = a.cols();
  s.multipliers_.assign(a.rows(), 1.0);
  s.matrix_ = std::move(a);
  return s;
}

double Strategy::BaseScale(double epsilon, double tuple_factor,
                           std::span<const double> multipliers) const {
  std::vector<double> inv(multipliers.size());
  for (size_t j = 0; j < inv.size(); ++j) inv[j] = 1.0 / multipliers[j];
  std::vector<double> col(n_);
  matrix_.ColumnAbsSums(inv, col);
  double max_col = 0;
  for (double c : col) max_col = std::max(max_col, c);
  return tuple_factor * max_col / epsilon;
}

std::vector<double> Strategy::RowAnswers(std::span<const double> x) const {
  switch (kind_) {
    case Kind::kIdentity:
      return std::vector<double>(x.begin(), x.end());
    case Kind::kTree: {
      const size_t m = padded_;
      // True node counts in heap order (root = 1), padded with zeros —
      // the exact summation order of the legacy publisher.
      std::vector<double> truth(2 * m, 0.0);
      for (size_t b = 0; b < x.size(); ++b) truth[m + b] = x[b];
      for (size_t v = m; v-- > 1;) {
        truth[v] = truth[2 * v] + truth[2 * v + 1];
      }
      return std::vector<double>(truth.begin() + 1, truth.end());
    }
    case Kind::kHaar: {
      std::vector<double> padded(padded_, 0.0);
      for (size_t b = 0; b < x.size(); ++b) padded[b] = x[b];
      return HaarTransform(padded).value();
    }
    case Kind::kExplicit: {
      std::vector<double> out(matrix_.rows());
      matrix_.MatVec(x, out);
      return out;
    }
  }
  return {};
}

Result<std::vector<double>> Strategy::Reconstruct(
    std::span<const double> noisy_rows, std::span<const double> scales) const {
  if (noisy_rows.size() != num_rows() || scales.size() != num_rows()) {
    return Status::InvalidArgument(
        "reconstruct needs one noisy answer and scale per strategy row");
  }
  for (double s : scales) {
    if (!(s > 0) || !std::isfinite(s)) {
      return Status::InvalidArgument("row scales must be positive finite");
    }
  }
  switch (kind_) {
    case Kind::kIdentity:
      return std::vector<double>(noisy_rows.begin(), noisy_rows.end());
    case Kind::kHaar: {
      IREDUCT_ASSIGN_OR_RETURN(std::vector<double> leaves,
                               HaarReconstruct(noisy_rows));
      leaves.resize(n_);
      return leaves;
    }
    case Kind::kTree: {
      const size_t m = padded_;
      const size_t nodes = 2 * m;
      std::vector<double> noisy(nodes, 0.0);
      std::vector<double> var(nodes, 0.0);
      for (size_t v = 1; v < nodes; ++v) {
        noisy[v] = noisy_rows[v - 1];
        var[v] = 2.0 * scales[v - 1] * scales[v - 1];
      }
      // Upward pass: per-node BLUE z[v] combining the node's own noisy
      // count with its children's subtree estimates; V[v] tracks the
      // estimate's variance. Reduces bit-identically to the legacy
      // uniform-scale passes (w = 2V/(σ²+2V)).
      std::vector<double> z = noisy;
      std::vector<double> sub_var = var;
      for (size_t v = m; v-- > 1;) {
        const double vc = sub_var[2 * v] + sub_var[2 * v + 1];
        const double w = vc / (var[v] + vc);
        z[v] = w * noisy[v] + (1 - w) * (z[2 * v] + z[2 * v + 1]);
        sub_var[v] = var[v] * vc / (var[v] + vc);
      }
      // Downward pass: enforce children-sum-to-parent, spreading each
      // residual over the children in proportion to their variances
      // (an even split at equal variance, matching the legacy pass).
      std::vector<double> consistent(nodes, 0.0);
      consistent[1] = z[1];
      for (size_t v = 1; v < m; ++v) {
        const double residual = consistent[v] - z[2 * v] - z[2 * v + 1];
        const double wl =
            sub_var[2 * v] / (sub_var[2 * v] + sub_var[2 * v + 1]);
        consistent[2 * v] = z[2 * v] + residual * wl;
        consistent[2 * v + 1] = z[2 * v + 1] + residual * (1 - wl);
      }
      return std::vector<double>(consistent.begin() + m,
                                 consistent.begin() + m + n_);
    }
    case Kind::kExplicit: {
      // Weighted normal equations AᵀΣ⁻¹A·x = AᵀΣ⁻¹y with Σ ∝ diag(scale²),
      // solved by dense Cholesky. Requires full column rank.
      const size_t n = n_;
      std::vector<double> ata(n * n, 0.0);
      std::vector<double> atb(n, 0.0);
      for (size_t j = 0; j < matrix_.rows(); ++j) {
        const double wgt = 1.0 / (scales[j] * scales[j]);
        const auto cols = matrix_.row_cols(j);
        const auto vals = matrix_.row_values(j);
        for (size_t a = 0; a < cols.size(); ++a) {
          atb[cols[a]] += wgt * vals[a] * noisy_rows[j];
          for (size_t b = 0; b < cols.size(); ++b) {
            ata[size_t{cols[a]} * n + cols[b]] += wgt * vals[a] * vals[b];
          }
        }
      }
      // In-place Cholesky ata = L·Lᵀ (lower triangle).
      for (size_t k = 0; k < n; ++k) {
        double pivot = ata[k * n + k];
        for (size_t i = 0; i < k; ++i) {
          pivot -= ata[k * n + i] * ata[k * n + i];
        }
        if (!(pivot > 0) || !std::isfinite(pivot)) {
          return Status::FailedPrecondition(
              "explicit strategy is column-rank-deficient: least-squares "
              "reconstruction is not unique");
        }
        const double lkk = std::sqrt(pivot);
        ata[k * n + k] = lkk;
        for (size_t r = k + 1; r < n; ++r) {
          double s = ata[r * n + k];
          for (size_t i = 0; i < k; ++i) {
            s -= ata[r * n + i] * ata[k * n + i];
          }
          ata[r * n + k] = s / lkk;
        }
      }
      // Solve L·u = atb, then Lᵀ·x = u.
      std::vector<double> x(n);
      for (size_t r = 0; r < n; ++r) {
        double s = atb[r];
        for (size_t i = 0; i < r; ++i) s -= ata[r * n + i] * x[i];
        x[r] = s / ata[r * n + r];
      }
      for (size_t r = n; r-- > 0;) {
        double s = x[r];
        for (size_t i = r + 1; i < n; ++i) s -= ata[i * n + r] * x[i];
        x[r] = s / ata[r * n + r];
      }
      return x;
    }
  }
  return Status::Internal("unknown strategy kind");
}

Result<std::vector<double>> Strategy::Publish(
    std::span<const double> histogram, double epsilon, double tuple_factor,
    std::span<const double> multipliers, BitGen& gen,
    std::vector<double>* scales_out) const {
  if (histogram.size() != n_) {
    return Status::InvalidArgument("histogram size does not match strategy");
  }
  if (!(epsilon > 0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("epsilon must be positive finite");
  }
  if (!(tuple_factor > 0)) {
    return Status::InvalidArgument("tuple factor must be positive");
  }
  if (multipliers.size() != num_rows()) {
    return Status::InvalidArgument("need one multiplier per strategy row");
  }
  for (double t : multipliers) {
    if (!(t > 0) || !std::isfinite(t)) {
      return Status::InvalidArgument("multipliers must be positive finite");
    }
  }
  const double base = BaseScale(epsilon, tuple_factor, multipliers);
  std::vector<double> rows = RowAnswers(histogram);
  std::vector<double> scales(rows.size());
  for (size_t j = 0; j < rows.size(); ++j) {
    scales[j] = multipliers[j] * base;
    rows[j] += gen.Laplace(scales[j]);
  }
  if (scales_out != nullptr) *scales_out = scales;
  return Reconstruct(rows, scales);
}

Result<std::vector<double>> StrategyQueryVariances(
    const Strategy& strategy, const SparseMatrix& w,
    std::span<const double> scales) {
  if (w.cols() != strategy.domain_size()) {
    return Status::InvalidArgument(
        "workload domain does not match strategy domain");
  }
  if (scales.size() != strategy.num_rows()) {
    return Status::InvalidArgument("need one scale per strategy row");
  }
  const size_t p = strategy.num_rows();
  if (p * (strategy.domain_size() + w.rows()) > kVarianceWorkCap) {
    return Status::InvalidArgument(
        "strategy too large for a per-query variance profile");
  }
  std::vector<double> var(w.rows(), 0.0);
  std::vector<double> unit(p, 0.0);
  std::vector<double> mr(w.rows());
  for (size_t j = 0; j < p; ++j) {
    unit[j] = 1.0;
    // Column j of the reconstruction operator A⁺ (Reconstruct is linear).
    IREDUCT_ASSIGN_OR_RETURN(std::vector<double> r,
                             strategy.Reconstruct(unit, scales));
    unit[j] = 0.0;
    w.MatVec(r, mr);
    for (size_t i = 0; i < mr.size(); ++i) {
      const double t = mr[i] * scales[j];
      var[i] += 2.0 * t * t;
    }
  }
  return var;
}

Result<GreedyTuneResult> GreedyTuneScales(
    const Strategy& strategy, const SparseMatrix& w,
    std::span<const double> query_weights, int passes) {
  if (w.cols() != strategy.domain_size()) {
    return Status::InvalidArgument(
        "workload domain does not match strategy domain");
  }
  if (query_weights.size() != w.rows()) {
    return Status::InvalidArgument("need one weight per workload query");
  }
  for (double qw : query_weights) {
    if (!(qw >= 0) || !std::isfinite(qw)) {
      return Status::InvalidArgument("query weights must be >= 0 and finite");
    }
  }
  if (passes < 0) {
    return Status::InvalidArgument("passes must be >= 0");
  }
  const size_t p = strategy.num_rows();
  const size_t n = strategy.domain_size();
  if (p * (n + w.rows()) > kVarianceWorkCap) {
    return Status::InvalidArgument("strategy too large for greedy tuning");
  }
  const std::span<const double> nat = strategy.row_multipliers();

  // s_j = Σ_i ω_i·M_ij² with the reconstruction operator frozen at the
  // natural multipliers (valid as relative scales — the shipped
  // reconstructions depend only on scale ratios).
  std::vector<double> s(p, 0.0);
  {
    std::vector<double> unit(p, 0.0);
    std::vector<double> mr(w.rows());
    for (size_t j = 0; j < p; ++j) {
      unit[j] = 1.0;
      IREDUCT_ASSIGN_OR_RETURN(std::vector<double> r,
                               strategy.Reconstruct(unit, nat));
      unit[j] = 0.0;
      w.MatVec(r, mr);
      KahanSum acc;
      for (size_t i = 0; i < mr.size(); ++i) {
        acc.Add(query_weights[i] * mr[i] * mr[i]);
      }
      s[j] = acc.value();
    }
  }

  GreedyTuneResult result;
  result.multipliers.assign(nat.begin(), nat.end());
  std::vector<double>& t = result.multipliers;

  // colsum[b] = Σ_j |A_jb|/t_j, maintained incrementally per move.
  std::vector<double> inv(p);
  for (size_t j = 0; j < p; ++j) inv[j] = 1.0 / t[j];
  std::vector<double> colsum(n);
  strategy.matrix().ColumnAbsSums(inv, colsum);
  auto max_col = [&] {
    double m = 0;
    for (double c : colsum) m = std::max(m, c);
    return m;
  };
  double sum_st2 = 0;  // Σ s_j·t_j²
  for (size_t j = 0; j < p; ++j) sum_st2 += s[j] * t[j] * t[j];
  double mc = max_col();
  double objective = mc * mc * sum_st2;
  result.initial_objective = objective;

  for (int pass = 0; pass < passes; ++pass) {
    bool improved = false;
    for (size_t j = 0; j < p; ++j) {
      for (const double gamma : {0.5, 2.0}) {
        const double tj_new = t[j] * gamma;
        if (tj_new < nat[j] / 64 || tj_new > nat[j] * 64) continue;
        const double inv_new = 1.0 / tj_new;
        const double d_inv = inv_new - inv[j];
        for (size_t k = 0; k < strategy.matrix().row_cols(j).size(); ++k) {
          colsum[strategy.matrix().row_cols(j)[k]] +=
              std::abs(strategy.matrix().row_values(j)[k]) * d_inv;
        }
        const double mc_new = max_col();
        const double sum_new =
            sum_st2 + s[j] * (tj_new * tj_new - t[j] * t[j]);
        const double obj_new = mc_new * mc_new * sum_new;
        if (obj_new < objective * (1 - 1e-12)) {
          t[j] = tj_new;
          inv[j] = inv_new;
          sum_st2 = sum_new;
          objective = obj_new;
          ++result.accepted_moves;
          improved = true;
        } else {
          for (size_t k = 0; k < strategy.matrix().row_cols(j).size(); ++k) {
            colsum[strategy.matrix().row_cols(j)[k]] -=
                std::abs(strategy.matrix().row_values(j)[k]) * d_inv;
          }
        }
      }
    }
    if (!improved) break;
  }
  result.final_objective = objective;
  return result;
}

}  // namespace ireduct
