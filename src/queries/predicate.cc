#include "queries/predicate.h"

namespace ireduct {

std::string ConjunctiveQuery::ToString(const Schema& schema) const {
  if (predicates.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) out += " AND ";
    out += schema.attribute(predicates[i].attribute).name;
    out += '=';
    out += std::to_string(predicates[i].value);
  }
  return out;
}

Status ValidateQuery(const Schema& schema, const ConjunctiveQuery& query) {
  for (const EqualityPredicate& p : query.predicates) {
    if (p.attribute >= schema.num_attributes()) {
      return Status::OutOfRange("predicate attribute out of range");
    }
    if (p.value >= schema.attribute(p.attribute).domain_size) {
      return Status::OutOfRange("predicate value outside domain of '" +
                                schema.attribute(p.attribute).name + "'");
    }
  }
  return Status::OK();
}

Result<double> EvaluateQuery(const Dataset& dataset,
                             const ConjunctiveQuery& query) {
  IREDUCT_RETURN_NOT_OK(ValidateQuery(dataset.schema(), query));
  size_t count = 0;
  for (size_t r = 0; r < dataset.num_rows(); ++r) {
    bool match = true;
    for (const EqualityPredicate& p : query.predicates) {
      if (dataset.value(r, p.attribute) != p.value) {
        match = false;
        break;
      }
    }
    count += match;
  }
  return static_cast<double>(count);
}

Result<Workload> BuildPredicateWorkload(
    const Dataset& dataset, std::span<const ConjunctiveQuery> queries) {
  if (queries.empty()) {
    return Status::InvalidArgument("need at least one query");
  }
  std::vector<double> answers;
  answers.reserve(queries.size());
  for (const ConjunctiveQuery& q : queries) {
    IREDUCT_ASSIGN_OR_RETURN(double answer, EvaluateQuery(dataset, q));
    answers.push_back(answer);
  }
  return Workload::PerQuery(std::move(answers), /*sensitivity_coeff=*/1.0);
}

}  // namespace ireduct
