// Range-count query workloads over 1D histograms — the selectivity-
// estimation setting the paper's introduction motivates (and the query
// family the absolute-error baselines of Section 7 target).
//
// Each query counts the tuples whose (binned) attribute value falls in an
// inclusive bin range. Changing one tuple moves it between two bins, so a
// single range count changes by at most 1; the grouped-workload model's
// additive generalized sensitivity Σ 1/λ_q is therefore a valid (possibly
// conservative, for heavily overlapping ranges) budget bound.
#ifndef IREDUCT_QUERIES_RANGE_WORKLOAD_H_
#define IREDUCT_QUERIES_RANGE_WORKLOAD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "dp/workload.h"

namespace ireduct {

/// An inclusive bin range [lo, hi].
struct BinRange {
  uint32_t lo = 0;
  uint32_t hi = 0;
};

/// True answer of one range count over a histogram.
Result<double> RangeCountAnswer(std::span<const double> histogram,
                                const BinRange& range);

/// Builds a batch workload with one singleton group per range query
/// (per-tuple sensitivity 1 each).
Result<Workload> BuildRangeWorkload(std::span<const double> histogram,
                                    std::span<const BinRange> ranges);

/// All prefix ranges [0, b] — the classic cumulative-distribution query
/// set used to compare against hierarchical methods.
std::vector<BinRange> PrefixRanges(size_t bins);

/// `count` random ranges with lengths geometrically spread between 1 and
/// `bins`, drawn with `gen` — a mixed workload exercising both point-like
/// and wide queries.
std::vector<BinRange> RandomRanges(size_t bins, size_t count, BitGen& gen);

/// Workload over the *bins themselves*, grouped into `groups_of` equal
/// consecutive runs, with the EXACT generalized sensitivity for disjoint
/// cells: one moved tuple leaves one bin and enters another, so
///   GS(Λ) = max(2/λ_g over same-group pairs,
///               1/λ_g + 1/λ_h over cross-group pairs) = 2/min_g λ_g
/// — far tighter than the additive Σ 1/λ bound. Because GS depends only
/// on the smallest scale, uniform scales are optimal for a plain
/// histogram (the same §5.3 observation the paper makes for a single
/// marginal); this builder mainly exists so that histogram tasks are not
/// mis-modeled with the additive bound (see bench/ablation_absolute_error
/// history in DESIGN.md).
Result<Workload> DisjointHistogramWorkload(std::span<const double> histogram,
                                           size_t groups_of = 1);

}  // namespace ireduct

#endif  // IREDUCT_QUERIES_RANGE_WORKLOAD_H_
