// Range-count query workloads over 1D histograms — the selectivity-
// estimation setting the paper's introduction motivates (and the query
// family the absolute-error baselines of Section 7 target).
//
// Each query counts the tuples whose (binned) attribute value falls in an
// inclusive bin range. Under add/remove neighbor semantics (one tuple
// appears in or vanishes from bin b) the exact per-tuple sensitivity of
// the workload at per-query scales Λ is the max weighted column L1 norm
// of its 0/1 workload matrix:
//   GS(Λ) = max_b Σ_{i : b ∈ range_i} 1/λ_i
// — the bound `BuildRangeWorkload` now installs via a LinearWorkload
// view (queries/linear_workload.h). The historical additive bound
// Σ_i 1/λ_i over-counts whenever no single bin is covered by every
// query: it is exact for `PrefixRanges` (bin 0 lies in every prefix)
// but ~m/(k+1)× too large for m sliding windows of width k. The legacy
// bound stays available through `RangeSensitivity::kAdditive` for
// comparison (see tests/queries/range_workload_test.cc's regression
// test).
#ifndef IREDUCT_QUERIES_RANGE_WORKLOAD_H_
#define IREDUCT_QUERIES_RANGE_WORKLOAD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "dp/workload.h"
#include "queries/linear_workload.h"

namespace ireduct {

/// An inclusive bin range [lo, hi].
struct BinRange {
  uint32_t lo = 0;
  uint32_t hi = 0;
};

/// True answer of one range count over a histogram.
Result<double> RangeCountAnswer(std::span<const double> histogram,
                                const BinRange& range);

/// The sparse 0/1 workload matrix of `ranges` over `histogram`, under
/// add/remove neighbor semantics. Storage is O(Σ range lengths).
Result<LinearWorkload> RangeLinearWorkload(std::span<const double> histogram,
                                           std::span<const BinRange> ranges);

/// Which generalized-sensitivity bound `BuildRangeWorkload` installs.
enum class RangeSensitivity {
  /// Exact per-tuple bound from the workload-matrix column L1 norm
  /// (default). The workload carries a custom SensitivityFn and a
  /// LinearWorkload view, so strategy mechanisms can answer it through
  /// the histogram domain.
  kExactColumn,
  /// The historical additive Σ 1/λ bound (one singleton group of
  /// coefficient 1 per query, no linear view) — conservative for
  /// overlapping ranges; kept for regression comparison.
  kAdditive,
};

/// Builds a batch workload with one singleton group per range query.
Result<Workload> BuildRangeWorkload(
    std::span<const double> histogram, std::span<const BinRange> ranges,
    RangeSensitivity sensitivity = RangeSensitivity::kExactColumn);

/// All prefix ranges [0, b] — the classic cumulative-distribution query
/// set used to compare against hierarchical methods.
std::vector<BinRange> PrefixRanges(size_t bins);

/// `count` sliding windows of width `width` (clamped to the domain):
/// [0, w-1], [1, w], ... wrapping back to 0 when the right edge leaves
/// the domain. The canonical workload where the exact column bound
/// beats the additive one by ~count/width.
std::vector<BinRange> SlidingWindowRanges(size_t bins, size_t width,
                                          size_t count);

/// `count` random ranges with lengths geometrically spread between 1 and
/// `bins`, drawn with `gen` — a mixed workload exercising both point-like
/// and wide queries.
std::vector<BinRange> RandomRanges(size_t bins, size_t count, BitGen& gen);

/// Workload over the *bins themselves*, grouped into `groups_of` equal
/// consecutive runs, with the EXACT generalized sensitivity for disjoint
/// cells: one moved tuple leaves one bin and enters another, so
///   GS(Λ) = max(2/λ_g over same-group pairs,
///               1/λ_g + 1/λ_h over cross-group pairs) = 2/min_g λ_g
/// — far tighter than the additive Σ 1/λ bound. Because GS depends only
/// on the smallest scale, uniform scales are optimal for a plain
/// histogram (the same §5.3 observation the paper makes for a single
/// marginal); this builder mainly exists so that histogram tasks are not
/// mis-modeled with the additive bound (see bench/ablation_absolute_error
/// history in DESIGN.md).
Result<Workload> DisjointHistogramWorkload(std::span<const double> histogram,
                                           size_t groups_of = 1);

}  // namespace ireduct

#endif  // IREDUCT_QUERIES_RANGE_WORKLOAD_H_
