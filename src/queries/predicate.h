// Conjunctive predicate count queries over categorical datasets: the
// generic "batch of counting queries" setting of the paper's Section 2,
// evaluated directly against a Dataset.
//
//   ConjunctiveQuery{{ {kAge, 30}, {kGender, 1} }}  counts rows with
//   Age = 30 AND Gender = 1.
//
// A single tuple change alters each conjunctive count by at most 1, so a
// batch maps onto the grouped workload with singleton groups of
// coefficient 1 (additively conservative when queries overlap).
#ifndef IREDUCT_QUERIES_PREDICATE_H_
#define IREDUCT_QUERIES_PREDICATE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "dp/workload.h"

namespace ireduct {

/// attribute == value.
struct EqualityPredicate {
  uint32_t attribute = 0;
  uint16_t value = 0;
};

/// AND of equality predicates; empty means "count all rows".
struct ConjunctiveQuery {
  std::vector<EqualityPredicate> predicates;

  /// Human-readable form like "Age=30 AND Gender=1".
  std::string ToString(const Schema& schema) const;
};

/// Validates a query against a schema (attribute indices and values in
/// domain). Contradictory predicates (same attribute, different values)
/// are legal; they simply count zero rows.
Status ValidateQuery(const Schema& schema, const ConjunctiveQuery& query);

/// Number of rows of `dataset` matching all predicates.
Result<double> EvaluateQuery(const Dataset& dataset,
                             const ConjunctiveQuery& query);

/// Builds a batch workload with one singleton group per query.
Result<Workload> BuildPredicateWorkload(
    const Dataset& dataset, std::span<const ConjunctiveQuery> queries);

}  // namespace ireduct

#endif  // IREDUCT_QUERIES_PREDICATE_H_
