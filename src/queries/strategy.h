// Strategy matrices: the matrix-mechanism core (Li–Miklau). Instead of
// noising a workload W directly, a mechanism answers a *strategy* A over
// the same domain histogram x — rows chosen so that (a) per-tuple
// sensitivity stays small and (b) every workload query is a
// low-variance combination of strategy rows — then reconstructs
//   x̂ = A⁺·y   (weighted least squares over the noisy rows y),
//   answers = W·x̂.
//
// Three strategies ship, each the exact linear-algebra form of a
// previously bespoke publisher:
//
//   identity — A = I. Laplace noise per bin; reconstruction is the
//     identity. The classic histogram mechanism.
//   tree     — A = the node-sum matrix of a complete binary tree over
//     the (power-of-two padded) domain, uniform noise per node,
//     reconstructed by the two-pass consistency BLUE (Hay et al.) —
//     which *is* the weighted-least-squares solution for tree
//     matrices. Bit-identical to the old algorithms/hierarchical.cc.
//   haar     — A = the Haar wavelet basis with per-level noise scales
//     (Privelet, Xiao et al.). A is square and invertible, so least
//     squares is the inverse transform. Bit-identical to the old
//     algorithms/wavelet.cc.
//
// `Explicit` accepts any full-column-rank sparse A (dense normal
// equations; small domains). Every strategy also materializes its
// matrix, so scale calibration is pure column algebra:
//   λ_j = t_j · base,  base = tuple_factor · max_b Σ_j |A_jb|/t_j / ε
// gives generalized sensitivity exactly ε for any positive row
// multipliers t — the knob `GreedyTuneScales` turns to minimize
// expected *relative* error per query.
#ifndef IREDUCT_QUERIES_STRATEGY_H_
#define IREDUCT_QUERIES_STRATEGY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "queries/linear_workload.h"

namespace ireduct {

/// Haar-transforms a power-of-two-length vector. Returns coefficients laid
/// out as: [0] the overall average, [1 .. m-1] the detail coefficients in
/// heap order (node v has children 2v and 2v+1; node v's detail is half
/// the difference between its left and right subtree averages).
/// (Moved from the deleted algorithms/wavelet.h.)
Result<std::vector<double>> HaarTransform(std::span<const double> values);

/// Inverse of HaarTransform.
Result<std::vector<double>> HaarReconstruct(
    std::span<const double> coefficients);

/// An immutable strategy matrix with its natural per-row noise
/// multipliers and a least-squares reconstruction operator.
class Strategy {
 public:
  enum class Kind { kIdentity, kTree, kHaar, kExplicit };

  /// A = I over `n` bins.
  static Strategy Identity(size_t n);
  /// Binary-tree node sums over `n` bins (padded to a power of two;
  /// rows are heap nodes 1..2m-1 in heap order).
  static Strategy Tree(size_t n);
  /// Haar wavelet rows over `n` bins (padded; row 0 is the average,
  /// rows 1..m-1 the detail coefficients in heap order).
  static Strategy Haar(size_t n);
  /// Any explicit strategy; must have at least one row and column.
  /// Reconstruction solves dense weighted normal equations, so the
  /// domain is capped (kExplicitDomainCap) and A must have full column
  /// rank (checked at Reconstruct time via the Cholesky pivots).
  static Result<Strategy> Explicit(SparseMatrix a);

  static constexpr size_t kExplicitDomainCap = 2048;

  Kind kind() const { return kind_; }
  /// Unpadded domain size n (columns of the materialized matrix).
  size_t domain_size() const { return n_; }
  /// Number of noisy rows released (tree: 2m-1, haar: m, identity: n).
  size_t num_rows() const { return matrix_.rows(); }
  /// The materialized strategy matrix over the unpadded domain. Used for
  /// column-norm calibration and tuning; answering and reconstruction go
  /// through the kind-specialized fast paths.
  const SparseMatrix& matrix() const { return matrix_; }

  /// Natural per-row noise multipliers t_j: all 1 for identity/tree/
  /// explicit, 1/W(c) for the Haar rows (the Privelet weights).
  std::span<const double> row_multipliers() const { return multipliers_; }

  /// base so that λ_j = t_j · base yields per-tuple sensitivity exactly
  /// `epsilon`: tuple_factor · max_b Σ_j |A_jb| / t_j / epsilon.
  double BaseScale(double epsilon, double tuple_factor,
                   std::span<const double> multipliers) const;

  /// y = A·x in the exact operation order of the legacy publishers
  /// (tree: bottom-up heap sums over the padded histogram; haar: the
  /// HaarTransform recurrence). x.size() must equal domain_size().
  std::vector<double> RowAnswers(std::span<const double> x) const;

  /// Weighted-least-squares estimate x̂ of the histogram from noisy row
  /// answers with per-row Laplace scales (variances 2·scale²). Exact
  /// inverse for the square strategies; the tree uses the generalized
  /// two-pass BLUE (variance-weighted, reducing bit-identically to the
  /// legacy passes at uniform scales); explicit strategies solve dense
  /// normal equations. Linear in `noisy_rows`.
  Result<std::vector<double>> Reconstruct(
      std::span<const double> noisy_rows,
      std::span<const double> scales) const;

  /// Draws Laplace noise row by row (the legacy draw order) at scales
  /// λ_j = multipliers[j] · BaseScale(epsilon, tuple_factor, multipliers)
  /// and reconstructs. Returns the noisy histogram estimate x̂; when
  /// `scales_out` is non-null it receives the per-row scales used.
  Result<std::vector<double>> Publish(std::span<const double> histogram,
                                      double epsilon, double tuple_factor,
                                      std::span<const double> multipliers,
                                      BitGen& gen,
                                      std::vector<double>* scales_out =
                                          nullptr) const;

 private:
  Strategy() = default;

  Kind kind_ = Kind::kIdentity;
  size_t n_ = 0;         // unpadded domain
  size_t padded_ = 0;    // power-of-two padding (tree/haar)
  SparseMatrix matrix_;  // rows × n_
  std::vector<double> multipliers_;
};

/// Per-query variance profile of answers = W·A⁺·y under per-row Laplace
/// scales: var_i = 2·Σ_j (M_ij·scale_j)², M = W·A⁺. Computed by
/// reconstructing unit row vectors (one column of A⁺ per strategy row);
/// refused above an internal work cap for very large strategies.
Result<std::vector<double>> StrategyQueryVariances(
    const Strategy& strategy, const SparseMatrix& w,
    std::span<const double> scales);

/// Greedy multiplicative coordinate descent over the row multipliers t,
/// minimizing the expected weighted squared error
///   F(t) = maxcol(t)² · Σ_j s_j·t_j²,  s_j = Σ_i query_weights_i·M_ij²
/// — the ε-independent shape of Σ_i ω_i·var_i under the BaseScale
/// calibration. With ω_i = 1/max(|rough answer_i|, δ)² this is expected
/// *relative* error, the paper's own metric. M is frozen at the natural
/// multipliers (the reconstruction operator's scale dependence is second
/// order for the shipped strategies; exact for identity/haar).
struct GreedyTuneResult {
  std::vector<double> multipliers;
  double initial_objective = 0;
  double final_objective = 0;
  int accepted_moves = 0;
};
Result<GreedyTuneResult> GreedyTuneScales(const Strategy& strategy,
                                          const SparseMatrix& w,
                                          std::span<const double> query_weights,
                                          int passes);

}  // namespace ireduct

#endif  // IREDUCT_QUERIES_STRATEGY_H_
