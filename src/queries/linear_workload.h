// Linear-query algebra over domain histograms (the matrix-mechanism
// setting of Li–Miklau and Li–Hay–Rastogi–Miklau–McGregor).
//
// A linear workload is a sparse matrix W (m queries × n domain bins)
// applied to a histogram x: the true answers are W·x, computed in one
// pass over the histogram. Its per-tuple sensitivity is a *column*
// property of W:
//
//   add/remove semantics — one tuple appears in or vanishes from bin b,
//   so query i changes by |W_ib| and the exact generalized sensitivity
//   at per-query scales Λ is   GS = max_b Σ_i |W_ib| / λ_i
//   (the maximum weighted column L1 norm);
//
//   move semantics — one tuple moves from bin b to b', changing query i
//   by |W_ib − W_ib'|; 2·max_b Σ_i |W_ib| / λ_i is a valid bound that is
//   exact whenever no query mixes the two bins (e.g. disjoint cell
//   indicators, where it reduces to the 2/min λ rule of
//   DisjointHistogramWorkload).
//
// This replaces the grouped workload model's additive Σ c_g/λ_g bound,
// which over-counts heavily overlapping queries (a sliding-window
// workload over m windows of width k has additive bound m/λ but exact
// column bound (k+1)/λ). `ToWorkload` packages the exact bound as a
// `Workload::SensitivityFn` and attaches the linear view to the
// workload so strategy mechanisms (queries/strategy.h) can recover W
// and the histogram.
#ifndef IREDUCT_QUERIES_LINEAR_WORKLOAD_H_
#define IREDUCT_QUERIES_LINEAR_WORKLOAD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "dp/workload.h"

namespace ireduct {

/// Immutable sparse matrix in compressed-sparse-row form. Built through
/// `Builder`, which accepts entries in any order and merges duplicates.
class SparseMatrix {
 public:
  /// An empty 0×0 matrix; assign from Builder::Build or Identity.
  SparseMatrix() = default;

  class Builder {
   public:
    Builder(size_t rows, size_t cols) : rows_(rows), cols_(cols) {}

    /// Stages one entry; duplicate (row, col) pairs are summed by Build.
    void Add(uint32_t row, uint32_t col, double value);

    /// Validates indices / finiteness and assembles the CSR arrays.
    Result<SparseMatrix> Build() &&;

   private:
    struct Entry {
      uint32_t row;
      uint32_t col;
      double value;
    };
    size_t rows_;
    size_t cols_;
    std::vector<Entry> entries_;
  };

  /// The n×n identity.
  static SparseMatrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// Column indices / values of row r (parallel spans, sorted by column).
  std::span<const uint32_t> row_cols(size_t r) const {
    return std::span<const uint32_t>(cols_idx_)
        .subspan(row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]);
  }
  std::span<const double> row_values(size_t r) const {
    return std::span<const double>(values_)
        .subspan(row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]);
  }

  /// out = M·x (Kahan-compensated per row). x.size() == cols(),
  /// out.size() == rows().
  void MatVec(std::span<const double> x, std::span<double> out) const;

  /// out = Mᵀ·y. y.size() == rows(), out.size() == cols().
  void TMatVec(std::span<const double> y, std::span<double> out) const;

  /// out[b] = Σ_r |M_rb| · row_weights[r]; an empty weight span means all
  /// ones. out.size() == cols().
  void ColumnAbsSums(std::span<const double> row_weights,
                     std::span<double> out) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<uint32_t> row_ptr_;   // rows_ + 1
  std::vector<uint32_t> cols_idx_;  // nnz, sorted within each row
  std::vector<double> values_;      // nnz
};

/// Which notion of "neighboring dataset" calibrates the per-tuple
/// sensitivity of a linear workload (see the header comment).
enum class NeighborModel {
  kAddRemove,  // one tuple added or removed; column bound is exact
  kMove,       // equal cardinality, one tuple moves between two bins
};

/// An immutable linear workload: W, the histogram it queries, and the
/// neighbor model its sensitivity is calibrated to.
class LinearWorkload {
 public:
  /// Validates shapes (W.cols() == histogram.size(), at least one query)
  /// and finiteness.
  static Result<LinearWorkload> Create(SparseMatrix w,
                                       std::vector<double> histogram,
                                       NeighborModel model);

  size_t num_queries() const { return w_.rows(); }
  size_t domain_size() const { return histogram_.size(); }
  const SparseMatrix& matrix() const { return w_; }
  std::span<const double> histogram() const { return histogram_; }
  NeighborModel neighbor_model() const { return model_; }

  /// 2 under move semantics, 1 under add/remove — the multiplier turning
  /// a max weighted column norm into the per-tuple sensitivity bound.
  double tuple_factor() const {
    return model_ == NeighborModel::kMove ? 2.0 : 1.0;
  }

  /// True answers W·x in one histogram pass.
  std::vector<double> Answers() const;

  /// Exact (add/remove) or disjoint-exact (move) generalized sensitivity
  /// at per-query noise scales: tuple_factor · max_b Σ_i |W_ib| / λ_i.
  /// Non-positive scales yield +infinity.
  double TupleSensitivity(std::span<const double> per_query_scales) const;

  /// Unweighted max column L1 norm of W (TupleSensitivity at unit scales
  /// divided by tuple_factor).
  double MaxColumnL1() const;

  /// Packages this workload for the mechanism layer: one singleton
  /// QueryGroup per query with the per-query additive coefficient
  /// tuple_factor · max_b |W_ib| (mechanism heuristics read it), the
  /// exact column-norm bound installed as the workload's SensitivityFn,
  /// and a shared copy of *this attached via Workload::SetLinear so
  /// strategy mechanisms can recover W and the histogram.
  Result<Workload> ToWorkload() const;

 private:
  LinearWorkload(SparseMatrix w, std::vector<double> histogram,
                 NeighborModel model)
      : w_(std::move(w)), histogram_(std::move(histogram)), model_(model) {}

  SparseMatrix w_;
  std::vector<double> histogram_;
  NeighborModel model_;
};

}  // namespace ireduct

#endif  // IREDUCT_QUERIES_LINEAR_WORKLOAD_H_
