#include "marginals/marginal_cache.h"

#include <cstdlib>

#include "marginals/marginal_evaluator.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace ireduct {

size_t EstimateMarginalBytes(const Marginal& marginal) {
  return sizeof(Marginal) +
         marginal.num_cells() * sizeof(double) +
         marginal.domain_sizes().size() *
             (sizeof(uint32_t) + sizeof(size_t) + sizeof(uint32_t));
}

MarginalCache& MarginalCache::Global() {
  static MarginalCache* cache = [] {
    auto* c = new MarginalCache();
    if (const char* env = std::getenv("IREDUCT_CACHE_BYTES");
        env != nullptr && *env != '\0') {
      c->set_byte_budget(std::strtoull(env, nullptr, 10));
    }
    return c;
  }();
  return *cache;
}

void MarginalCache::TouchLocked(Entry* entry) {
  lru_.splice(lru_.begin(), lru_, entry->lru);
}

void MarginalCache::EvictToBudgetLocked() {
  while (byte_budget_ > 0 && bytes_ > byte_budget_ && !lru_.empty()) {
    const auto it = entries_.find(lru_.back());
    const size_t freed = it->second.bytes;
    bytes_ -= freed;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
    IREDUCT_METRIC_COUNT("marginals.cache_evictions", 1);
    // Safe under mu_: the event log never calls back into the cache.
    if (obs::EventLog* events = obs::EventLog::Get()) {
      events->Emit("cache.evict",
                   {{"freed_bytes", static_cast<uint64_t>(freed)},
                    {"resident_bytes", static_cast<uint64_t>(bytes_)},
                    {"entries", static_cast<uint64_t>(entries_.size())}});
    }
  }
  IREDUCT_METRIC_GAUGE_SET("marginals.cache_resident_bytes",
                           static_cast<double>(bytes_));
}

Result<std::vector<Marginal>> MarginalCache::GetOrCompute(
    const Dataset& dataset, std::span<const MarginalSpec> specs,
    ThreadPool* pool) {
  return GetOrCompute(dataset.Fingerprint(), dataset, specs, pool);
}

Result<std::vector<Marginal>> MarginalCache::GetOrCompute(
    uint64_t fingerprint, const Dataset& dataset,
    std::span<const MarginalSpec> specs, ThreadPool* pool) {
  std::vector<std::shared_ptr<const Marginal>> found(specs.size());
  std::vector<MarginalSpec> missing;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < specs.size(); ++i) {
      const auto it =
          entries_.find(Key{fingerprint, specs[i].attributes});
      if (it != entries_.end()) {
        found[i] = it->second.table;
        TouchLocked(&it->second);
      }
    }
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    if (found[i] == nullptr) missing.push_back(specs[i]);
  }
  IREDUCT_METRIC_COUNT("marginals.cache_hits", specs.size() - missing.size());
  IREDUCT_METRIC_COUNT("marginals.cache_misses", missing.size());

  if (!missing.empty()) {
    // Compute outside the lock: a concurrent miss on the same key at worst
    // duplicates work, and both computations insert identical tables.
    IREDUCT_ASSIGN_OR_RETURN(
        MarginalSetEvaluator evaluator,
        MarginalSetEvaluator::Create(dataset.schema(), std::move(missing)));
    IREDUCT_ASSIGN_OR_RETURN(std::vector<Marginal> computed,
                             evaluator.Compute(dataset, {}, pool));
    std::lock_guard<std::mutex> lock(mu_);
    size_t c = 0;
    for (size_t i = 0; i < specs.size(); ++i) {
      if (found[i] != nullptr) continue;
      Key key{fingerprint, specs[i].attributes};
      auto entry = std::make_shared<const Marginal>(std::move(computed[c++]));
      found[i] = entry;
      const auto it = entries_.find(key);
      if (it != entries_.end()) {
        // A concurrent computation won the race; keep its entry.
        TouchLocked(&it->second);
        continue;
      }
      lru_.push_front(key);
      const size_t entry_bytes = EstimateMarginalBytes(*entry);
      bytes_ += entry_bytes;
      entries_.emplace(std::move(key),
                       Entry{std::move(entry), entry_bytes, lru_.begin()});
    }
    // Evict only after the whole batch is in, so one request's specs never
    // evict each other before the caller has its copies (found[] keeps the
    // tables alive regardless).
    EvictToBudgetLocked();
  }

  std::vector<Marginal> result;
  result.reserve(specs.size());
  for (const auto& entry : found) result.push_back(*entry);
  return result;
}

size_t MarginalCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t MarginalCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t MarginalCache::byte_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return byte_budget_;
}

void MarginalCache::set_byte_budget(size_t budget) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = budget;
  EvictToBudgetLocked();
}

uint64_t MarginalCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void MarginalCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  IREDUCT_METRIC_GAUGE_SET("marginals.cache_resident_bytes", 0.0);
}

}  // namespace ireduct
