#include "marginals/marginal_cache.h"

#include "marginals/marginal_evaluator.h"
#include "obs/metrics.h"

namespace ireduct {

MarginalCache& MarginalCache::Global() {
  static MarginalCache* cache = new MarginalCache();
  return *cache;
}

Result<std::vector<Marginal>> MarginalCache::GetOrCompute(
    const Dataset& dataset, std::span<const MarginalSpec> specs,
    ThreadPool* pool) {
  return GetOrCompute(dataset.Fingerprint(), dataset, specs, pool);
}

Result<std::vector<Marginal>> MarginalCache::GetOrCompute(
    uint64_t fingerprint, const Dataset& dataset,
    std::span<const MarginalSpec> specs, ThreadPool* pool) {
  std::vector<std::shared_ptr<const Marginal>> found(specs.size());
  std::vector<MarginalSpec> missing;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < specs.size(); ++i) {
      const auto it =
          entries_.find(Key{fingerprint, specs[i].attributes});
      if (it != entries_.end()) found[i] = it->second;
    }
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    if (found[i] == nullptr) missing.push_back(specs[i]);
  }
  IREDUCT_METRIC_COUNT("marginals.cache_hits", specs.size() - missing.size());
  IREDUCT_METRIC_COUNT("marginals.cache_misses", missing.size());

  if (!missing.empty()) {
    // Compute outside the lock: a concurrent miss on the same key at worst
    // duplicates work, and both computations insert identical tables.
    IREDUCT_ASSIGN_OR_RETURN(
        MarginalSetEvaluator evaluator,
        MarginalSetEvaluator::Create(dataset.schema(), std::move(missing)));
    IREDUCT_ASSIGN_OR_RETURN(std::vector<Marginal> computed,
                             evaluator.Compute(dataset, {}, pool));
    std::lock_guard<std::mutex> lock(mu_);
    size_t c = 0;
    for (size_t i = 0; i < specs.size(); ++i) {
      if (found[i] != nullptr) continue;
      auto entry = std::make_shared<const Marginal>(std::move(computed[c++]));
      entries_.insert_or_assign(Key{fingerprint, specs[i].attributes}, entry);
      found[i] = std::move(entry);
    }
  }

  std::vector<Marginal> result;
  result.reserve(specs.size());
  for (const auto& entry : found) result.push_back(*entry);
  return result;
}

size_t MarginalCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MarginalCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace ireduct
