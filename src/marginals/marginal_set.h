// Enumeration and batch computation of marginal collections: all j-way
// marginals (the Section 6.3/6.4 tasks) and the classifier set of
// Section 6.5 (the class attribute's 1D marginal plus one 2D marginal per
// feature x class pair).
#ifndef IREDUCT_MARGINALS_MARGINAL_SET_H_
#define IREDUCT_MARGINALS_MARGINAL_SET_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "marginals/marginal.h"

namespace ireduct {

/// All (num_attributes choose k) k-way marginal specs, in lexicographic
/// attribute order. Requires 1 <= k <= num_attributes.
Result<std::vector<MarginalSpec>> AllKWaySpecs(const Schema& schema, int k);

/// The Naive Bayes marginal set (Section 6.5): the 1D marginal on
/// `class_attr` followed by {feature, class_attr} 2D marginals for every
/// other attribute.
Result<std::vector<MarginalSpec>> ClassifierSpecs(const Schema& schema,
                                                  size_t class_attr);

/// Computes each spec over `dataset` (optionally restricted to `rows`).
Result<std::vector<Marginal>> ComputeMarginals(
    const Dataset& dataset, std::span<const MarginalSpec> specs,
    std::span<const uint32_t> rows = {});

}  // namespace ireduct

#endif  // IREDUCT_MARGINALS_MARGINAL_SET_H_
