#include "marginals/consistency.h"

#include <algorithm>
#include <cmath>

#include "marginals/postprocess.h"

namespace ireduct {

namespace {

// True if `inner` is a subsequence of `outer` (the ProjectMarginal
// requirement) and strictly smaller.
bool IsStrictSubsequence(const MarginalSpec& inner,
                         const MarginalSpec& outer) {
  if (inner.attributes.size() >= outer.attributes.size()) return false;
  size_t cursor = 0;
  for (uint32_t attr : inner.attributes) {
    while (cursor < outer.attributes.size() &&
           outer.attributes[cursor] != attr) {
      ++cursor;
    }
    if (cursor == outer.attributes.size()) return false;
    ++cursor;
  }
  return true;
}

struct SubsetPair {
  size_t coarse;
  size_t fine;
};

std::vector<SubsetPair> FindSubsetPairs(
    std::span<const Marginal> marginals) {
  std::vector<SubsetPair> pairs;
  for (size_t i = 0; i < marginals.size(); ++i) {
    for (size_t j = 0; j < marginals.size(); ++j) {
      if (i != j && IsStrictSubsequence(marginals[i].spec(),
                                        marginals[j].spec())) {
        pairs.push_back(SubsetPair{i, j});
      }
    }
  }
  return pairs;
}

}  // namespace

double MaxProjectionDiscrepancy(std::span<const Marginal> marginals) {
  double worst = 0;
  for (const SubsetPair& pair : FindSubsetPairs(marginals)) {
    auto projected = ProjectMarginal(
        marginals[pair.fine], marginals[pair.coarse].spec().attributes);
    if (!projected.ok()) continue;
    for (size_t c = 0; c < projected->num_cells(); ++c) {
      worst = std::fmax(worst, std::fabs(projected->count(c) -
                                         marginals[pair.coarse].count(c)));
    }
  }
  return worst;
}

Result<std::vector<Marginal>> MakeMutuallyConsistent(
    std::vector<Marginal> marginals, const ConsistencyOptions& options) {
  if (marginals.empty()) {
    return Status::InvalidArgument("need at least one marginal");
  }
  if (options.max_rounds < 1 || !(options.tolerance >= 0)) {
    return Status::InvalidArgument("invalid consistency options");
  }
  const double total = options.target_total > 0 ? options.target_total
                                                : MeanTotal(marginals);
  const std::vector<SubsetPair> pairs = FindSubsetPairs(marginals);

  marginals = EnforceTotal(std::move(marginals), total);
  for (int round = 0; round < options.max_rounds; ++round) {
    if (MaxProjectionDiscrepancy(marginals) <= options.tolerance) break;
    for (const SubsetPair& pair : pairs) {
      IREDUCT_ASSIGN_OR_RETURN(
          Marginal projected,
          ProjectMarginal(marginals[pair.fine],
                          marginals[pair.coarse].spec().attributes));
      // Both tables estimate the same counts; average them into the
      // coarse table, then redistribute the fine one to match.
      std::vector<double> averaged(projected.num_cells());
      for (size_t c = 0; c < averaged.size(); ++c) {
        averaged[c] =
            (projected.count(c) + marginals[pair.coarse].count(c)) / 2;
      }
      IREDUCT_ASSIGN_OR_RETURN(
          Marginal coarse,
          Marginal::FromCounts(marginals[pair.coarse].spec(),
                               marginals[pair.coarse].domain_sizes(),
                               std::move(averaged)));
      marginals[pair.coarse] = std::move(coarse);
      IREDUCT_ASSIGN_OR_RETURN(
          Marginal fitted,
          FitProjection(marginals[pair.fine], marginals[pair.coarse]));
      marginals[pair.fine] = std::move(fitted);
    }
    marginals = EnforceTotal(std::move(marginals), total);
  }
  return marginals;
}

}  // namespace ireduct
