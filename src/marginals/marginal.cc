#include "marginals/marginal.h"

#include <unordered_set>

#include "common/logging.h"
#include "common/numeric.h"

namespace ireduct {

std::string MarginalSpec::Name(const Schema& schema) const {
  std::string name;
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (i > 0) name += " x ";
    name += schema.attribute(attributes[i]).name;
  }
  return name;
}

namespace {

Status ValidateSpec(const MarginalSpec& spec, size_t num_attributes) {
  if (spec.attributes.empty()) {
    return Status::InvalidArgument("marginal spec needs >= 1 attribute");
  }
  std::unordered_set<uint32_t> seen;
  for (uint32_t a : spec.attributes) {
    if (a >= num_attributes) {
      return Status::OutOfRange("attribute index out of range");
    }
    if (!seen.insert(a).second) {
      return Status::InvalidArgument("duplicate attribute in marginal spec");
    }
  }
  return Status::OK();
}

Result<size_t> CellCount(const std::vector<uint32_t>& domain_sizes) {
  size_t cells = 1;
  for (uint32_t ds : domain_sizes) {
    if (ds == 0) return Status::InvalidArgument("zero domain size");
    if (cells > (static_cast<size_t>(1) << 40) / ds) {
      return Status::InvalidArgument("marginal domain too large");
    }
    cells *= ds;
  }
  return cells;
}

}  // namespace

Marginal::Marginal(MarginalSpec spec, std::vector<uint32_t> domain_sizes,
                   std::vector<double> counts)
    : spec_(std::move(spec)),
      domain_sizes_(std::move(domain_sizes)),
      counts_(std::move(counts)) {
  strides_.resize(domain_sizes_.size());
  size_t stride = 1;
  for (size_t i = domain_sizes_.size(); i-- > 0;) {
    strides_[i] = stride;
    stride *= domain_sizes_[i];
  }
}

Result<Marginal> Marginal::Compute(const Dataset& dataset, MarginalSpec spec,
                                   std::span<const uint32_t> rows) {
  IREDUCT_RETURN_NOT_OK(
      ValidateSpec(spec, dataset.schema().num_attributes()));
  std::vector<uint32_t> domain_sizes;
  domain_sizes.reserve(spec.attributes.size());
  for (uint32_t a : spec.attributes) {
    domain_sizes.push_back(dataset.schema().attribute(a).domain_size);
  }
  IREDUCT_ASSIGN_OR_RETURN(const size_t cells, CellCount(domain_sizes));

  Marginal marginal(std::move(spec), std::move(domain_sizes),
                    std::vector<double>(cells, 0.0));
  const auto count_row = [&](size_t r) {
    size_t cell = 0;
    for (size_t i = 0; i < marginal.spec_.attributes.size(); ++i) {
      cell += marginal.strides_[i] *
              dataset.value(r, marginal.spec_.attributes[i]);
    }
    marginal.counts_[cell] += 1.0;
  };
  if (rows.empty()) {
    for (size_t r = 0; r < dataset.num_rows(); ++r) count_row(r);
  } else {
    for (uint32_t r : rows) {
      if (r >= dataset.num_rows()) {
        return Status::OutOfRange("row index out of range");
      }
      count_row(r);
    }
  }
  return marginal;
}

Result<Marginal> Marginal::FromCounts(MarginalSpec spec,
                                      std::vector<uint32_t> domain_sizes,
                                      std::vector<double> counts) {
  if (spec.attributes.size() != domain_sizes.size()) {
    return Status::InvalidArgument("spec/domain arity mismatch");
  }
  IREDUCT_ASSIGN_OR_RETURN(const size_t cells, CellCount(domain_sizes));
  if (cells != counts.size()) {
    return Status::InvalidArgument("count table size does not match domain");
  }
  return Marginal(std::move(spec), std::move(domain_sizes),
                  std::move(counts));
}

size_t Marginal::CellIndex(std::span<const uint16_t> values) const {
  IREDUCT_DCHECK(values.size() == domain_sizes_.size());
  size_t cell = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    IREDUCT_DCHECK(values[i] < domain_sizes_[i]);
    cell += strides_[i] * values[i];
  }
  return cell;
}

std::vector<uint16_t> Marginal::CellCoordinates(size_t cell) const {
  IREDUCT_DCHECK(cell < counts_.size());
  std::vector<uint16_t> coords(domain_sizes_.size());
  for (size_t i = 0; i < domain_sizes_.size(); ++i) {
    coords[i] = static_cast<uint16_t>((cell / strides_[i]) % domain_sizes_[i]);
  }
  return coords;
}

double Marginal::Total() const { return StableSum(counts_); }

}  // namespace ireduct
