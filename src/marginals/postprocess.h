// Post-processing of noisy marginals (paper Conclusion; cf. Barak et al.,
// PODS'07). Differentially private marginals can be negative, fractional
// and mutually inconsistent; any data-independent post-processing is free
// of privacy cost. This module provides the standard repairs:
//
//   * non-negativity clamping and integer rounding;
//   * projection of a marginal onto an attribute subset (summing out);
//   * total consistency across a marginal set (every marginal of the same
//     table must sum to |T|);
//   * pairwise projection consistency: when one marginal's attributes are
//     a subset of another's, the finer marginal is adjusted (least-squares
//     style: the residual is spread evenly over the contributing cells) so
//     that its projection reproduces the coarser one.
#ifndef IREDUCT_MARGINALS_POSTPROCESS_H_
#define IREDUCT_MARGINALS_POSTPROCESS_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "marginals/marginal.h"

namespace ireduct {

/// Returns a copy of `marginal` with every count clamped to >= 0.
Marginal ClampNonNegative(const Marginal& marginal);

/// Returns a copy of `marginal` with every count rounded to the nearest
/// integer (ties away from zero).
Marginal RoundCounts(const Marginal& marginal);

/// Projects `marginal` onto `keep` (a subsequence of its attributes),
/// summing out the rest. `keep` must be non-empty and listed in the same
/// order as in the marginal's spec.
Result<Marginal> ProjectMarginal(const Marginal& marginal,
                                 std::span<const uint32_t> keep);

/// Additively shifts every count of each marginal so all totals equal
/// `target_total` (e.g. the public dataset cardinality, or the mean of the
/// noisy totals — the minimum-L2 repair).
std::vector<Marginal> EnforceTotal(std::vector<Marginal> marginals,
                                   double target_total);

/// Mean of the marginals' noisy totals — the natural consistency target
/// when |T| itself is not public.
double MeanTotal(std::span<const Marginal> marginals);

/// Adjusts `fine` minimally (in L2) so that its projection onto `coarse`'s
/// attributes equals `coarse`: each projected group's residual is spread
/// evenly over its contributing cells. `coarse.spec()` must be a
/// subsequence of `fine.spec()`.
Result<Marginal> FitProjection(const Marginal& fine, const Marginal& coarse);

}  // namespace ireduct

#endif  // IREDUCT_MARGINALS_POSTPROCESS_H_
