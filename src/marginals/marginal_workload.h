// Bridges marginal collections and the mechanism layer: flattens a set of
// marginals into a grouped Workload (one group per marginal, sensitivity
// coefficient 2 — changing one tuple moves exactly two cells of each
// marginal by one, Section 5.1) and reconstructs noisy marginals from a
// mechanism's flat answer vector.
#ifndef IREDUCT_MARGINALS_MARGINAL_WORKLOAD_H_
#define IREDUCT_MARGINALS_MARGINAL_WORKLOAD_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "dp/workload.h"
#include "marginals/marginal.h"

namespace ireduct {

/// A marginal collection in workload form.
class MarginalWorkload {
 public:
  /// Flattens `marginals` (cells in row-major order, marginal by marginal).
  static Result<MarginalWorkload> Create(std::vector<Marginal> marginals);

  const Workload& workload() const { return workload_; }
  size_t num_marginals() const { return marginals_.size(); }
  const Marginal& marginal(size_t i) const { return marginals_[i]; }

  /// Rebuilds per-marginal tables from a mechanism's flat published
  /// answers (`answers.size()` must equal the workload's query count).
  Result<std::vector<Marginal>> ToMarginals(
      std::span<const double> answers) const;

 private:
  MarginalWorkload(std::vector<Marginal> marginals, Workload workload)
      : marginals_(std::move(marginals)), workload_(std::move(workload)) {}

  std::vector<Marginal> marginals_;
  Workload workload_;
};

}  // namespace ireduct

#endif  // IREDUCT_MARGINALS_MARGINAL_WORKLOAD_H_
