// Bridges marginal collections and the mechanism layer: flattens a set of
// marginals into a grouped Workload (one group per marginal, sensitivity
// coefficient 2 — changing one tuple moves exactly two cells of each
// marginal by one, Section 5.1) and reconstructs noisy marginals from a
// mechanism's flat answer vector.
#ifndef IREDUCT_MARGINALS_MARGINAL_WORKLOAD_H_
#define IREDUCT_MARGINALS_MARGINAL_WORKLOAD_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "dp/workload.h"
#include "marginals/marginal.h"
#include "queries/linear_workload.h"

namespace ireduct {

/// A marginal collection in workload form.
class MarginalWorkload {
 public:
  /// Flattens `marginals` (cells in row-major order, marginal by marginal).
  static Result<MarginalWorkload> Create(std::vector<Marginal> marginals);

  const Workload& workload() const { return workload_; }
  size_t num_marginals() const { return marginals_.size(); }
  const Marginal& marginal(size_t i) const { return marginals_[i]; }

  /// Rebuilds per-marginal tables from a mechanism's flat published
  /// answers (`answers.size()` must equal the workload's query count).
  Result<std::vector<Marginal>> ToMarginals(
      std::span<const double> answers) const;

  /// Lowers the marginal set to cell-indicator linear queries over the
  /// *joint* domain of the union of all marginals' attributes: one pass
  /// over `dataset` builds the joint histogram, and every marginal cell
  /// becomes a 0/1 row selecting the joint cells that project onto it
  /// (move semantics — one moved tuple changes two cells per marginal).
  /// The linear workload's Answers() equal this workload's
  /// true_answers() exactly; strategy mechanisms can then noise the
  /// joint domain instead of the flattened cells. Refused when the
  /// joint domain exceeds `max_cells` (the product of attribute domain
  /// sizes grows combinatorially — this is a small-schema tool).
  Result<LinearWorkload> ToLinear(const Dataset& dataset,
                                  size_t max_cells = size_t{1} << 20) const;

 private:
  MarginalWorkload(std::vector<Marginal> marginals, Workload workload)
      : marginals_(std::move(marginals)), workload_(std::move(workload)) {}

  std::vector<Marginal> marginals_;
  Workload workload_;
};

}  // namespace ireduct

#endif  // IREDUCT_MARGINALS_MARGINAL_WORKLOAD_H_
