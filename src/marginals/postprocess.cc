#include "marginals/postprocess.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/numeric.h"

namespace ireduct {

namespace {

Marginal WithCounts(const Marginal& original, std::vector<double> counts) {
  auto rebuilt = Marginal::FromCounts(original.spec(),
                                      original.domain_sizes(),
                                      std::move(counts));
  IREDUCT_CHECK(rebuilt.ok());
  return std::move(rebuilt).value();
}

}  // namespace

Marginal ClampNonNegative(const Marginal& marginal) {
  std::vector<double> counts(marginal.counts().begin(),
                             marginal.counts().end());
  for (double& c : counts) c = std::fmax(c, 0.0);
  return WithCounts(marginal, std::move(counts));
}

Marginal RoundCounts(const Marginal& marginal) {
  std::vector<double> counts(marginal.counts().begin(),
                             marginal.counts().end());
  for (double& c : counts) c = std::round(c);
  return WithCounts(marginal, std::move(counts));
}

namespace {

// Positions (indices into fine.spec().attributes) of the coarse attributes
// within the fine spec, or an error if not a subsequence.
Result<std::vector<size_t>> SubsequencePositions(const MarginalSpec& fine,
                                                 const MarginalSpec& coarse) {
  std::vector<size_t> positions;
  size_t cursor = 0;
  for (uint32_t attr : coarse.attributes) {
    while (cursor < fine.attributes.size() &&
           fine.attributes[cursor] != attr) {
      ++cursor;
    }
    if (cursor == fine.attributes.size()) {
      return Status::InvalidArgument(
          "coarse attributes are not a subsequence of the fine marginal's");
    }
    positions.push_back(cursor++);
  }
  return positions;
}

}  // namespace

Result<Marginal> ProjectMarginal(const Marginal& marginal,
                                 std::span<const uint32_t> keep) {
  MarginalSpec coarse_spec;
  coarse_spec.attributes.assign(keep.begin(), keep.end());
  IREDUCT_ASSIGN_OR_RETURN(
      std::vector<size_t> positions,
      SubsequencePositions(marginal.spec(), coarse_spec));

  std::vector<uint32_t> coarse_domains;
  for (size_t p : positions) {
    coarse_domains.push_back(marginal.domain_sizes()[p]);
  }
  IREDUCT_ASSIGN_OR_RETURN(
      Marginal coarse,
      Marginal::FromCounts(coarse_spec, coarse_domains,
                           std::vector<double>(
                               [&] {
                                 size_t cells = 1;
                                 for (uint32_t d : coarse_domains) cells *= d;
                                 return cells;
                               }(),
                               0.0)));

  std::vector<double> counts(coarse.num_cells(), 0.0);
  std::vector<uint16_t> coarse_coords(positions.size());
  for (size_t cell = 0; cell < marginal.num_cells(); ++cell) {
    const std::vector<uint16_t> coords = marginal.CellCoordinates(cell);
    for (size_t i = 0; i < positions.size(); ++i) {
      coarse_coords[i] = coords[positions[i]];
    }
    counts[coarse.CellIndex(coarse_coords)] += marginal.count(cell);
  }
  return Marginal::FromCounts(coarse_spec, std::move(coarse_domains),
                              std::move(counts));
}

double MeanTotal(std::span<const Marginal> marginals) {
  IREDUCT_CHECK(!marginals.empty());
  KahanSum acc;
  for (const Marginal& m : marginals) acc.Add(m.Total());
  return acc.value() / marginals.size();
}

std::vector<Marginal> EnforceTotal(std::vector<Marginal> marginals,
                                   double target_total) {
  std::vector<Marginal> out;
  out.reserve(marginals.size());
  for (Marginal& m : marginals) {
    const double shift = (target_total - m.Total()) / m.num_cells();
    std::vector<double> counts(m.counts().begin(), m.counts().end());
    for (double& c : counts) c += shift;
    out.push_back(WithCounts(m, std::move(counts)));
  }
  return out;
}

Result<Marginal> FitProjection(const Marginal& fine, const Marginal& coarse) {
  IREDUCT_ASSIGN_OR_RETURN(
      std::vector<size_t> positions,
      SubsequencePositions(fine.spec(), coarse.spec()));
  for (size_t i = 0; i < positions.size(); ++i) {
    if (fine.domain_sizes()[positions[i]] != coarse.domain_sizes()[i]) {
      return Status::InvalidArgument("domain sizes disagree");
    }
  }

  // Group the fine cells by their coarse cell; spread each residual evenly.
  const size_t coarse_cells = coarse.num_cells();
  std::vector<double> projected(coarse_cells, 0.0);
  std::vector<double> group_size(coarse_cells, 0.0);
  std::vector<size_t> coarse_of(fine.num_cells());
  std::vector<uint16_t> coarse_coords(positions.size());
  for (size_t cell = 0; cell < fine.num_cells(); ++cell) {
    const std::vector<uint16_t> coords = fine.CellCoordinates(cell);
    for (size_t i = 0; i < positions.size(); ++i) {
      coarse_coords[i] = coords[positions[i]];
    }
    const size_t cc = coarse.CellIndex(coarse_coords);
    coarse_of[cell] = cc;
    projected[cc] += fine.count(cell);
    group_size[cc] += 1.0;
  }

  std::vector<double> counts(fine.counts().begin(), fine.counts().end());
  for (size_t cell = 0; cell < counts.size(); ++cell) {
    const size_t cc = coarse_of[cell];
    counts[cell] += (coarse.count(cc) - projected[cc]) / group_size[cc];
  }
  return Marginal::FromCounts(fine.spec(), fine.domain_sizes(),
                              std::move(counts));
}

}  // namespace ireduct
