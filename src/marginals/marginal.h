// Marginals: projections of a multi-dimensional histogram onto attribute
// subsets (paper Section 5.1). A marginal over attributes A1..Ak is a table
// of Π|Ai| counts, one per point of the projected domain.
#ifndef IREDUCT_MARGINALS_MARGINAL_H_
#define IREDUCT_MARGINALS_MARGINAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace ireduct {

/// Which attributes a marginal projects onto (indices into the schema).
struct MarginalSpec {
  std::vector<uint32_t> attributes;

  /// Human-readable name like "Age x Gender".
  std::string Name(const Schema& schema) const;
};

/// A computed (or noisy) marginal: the spec, the projected domain sizes and
/// a flat row-major count table.
class Marginal {
 public:
  /// Scans `dataset` once and counts every cell. With non-empty `rows`,
  /// only the listed row indices are counted (used for cross-validation
  /// folds). Spec attributes must be distinct and in range.
  static Result<Marginal> Compute(const Dataset& dataset, MarginalSpec spec,
                                  std::span<const uint32_t> rows = {});

  /// Wraps externally produced (e.g. noisy) counts; sizes must multiply to
  /// counts.size().
  static Result<Marginal> FromCounts(MarginalSpec spec,
                                     std::vector<uint32_t> domain_sizes,
                                     std::vector<double> counts);

  const MarginalSpec& spec() const { return spec_; }
  const std::vector<uint32_t>& domain_sizes() const { return domain_sizes_; }
  size_t num_cells() const { return counts_.size(); }
  double count(size_t cell) const { return counts_[cell]; }
  std::span<const double> counts() const { return counts_; }

  /// Flat cell index of the given per-attribute values (aligned with
  /// spec().attributes; row-major, first attribute varies slowest).
  size_t CellIndex(std::span<const uint16_t> values) const;

  /// Inverse of CellIndex.
  std::vector<uint16_t> CellCoordinates(size_t cell) const;

  /// Sum of all counts (equals |T| for a marginal computed over all rows).
  double Total() const;

 private:
  Marginal(MarginalSpec spec, std::vector<uint32_t> domain_sizes,
           std::vector<double> counts);

  MarginalSpec spec_;
  std::vector<uint32_t> domain_sizes_;  // aligned with spec_.attributes
  std::vector<size_t> strides_;         // row-major strides
  std::vector<double> counts_;
};

}  // namespace ireduct

#endif  // IREDUCT_MARGINALS_MARGINAL_H_
