#include "marginals/marginal_evaluator.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <unordered_set>

#include "common/logging.h"
#include "obs/metrics.h"

namespace ireduct {

namespace {

// Mirrors the per-spec validation of Marginal::Compute so the fused path
// rejects exactly what the per-marginal path rejects.
Status ValidateSpec(const MarginalSpec& spec, size_t num_attributes) {
  if (spec.attributes.empty()) {
    return Status::InvalidArgument("marginal spec needs >= 1 attribute");
  }
  std::unordered_set<uint32_t> seen;
  for (uint32_t a : spec.attributes) {
    if (a >= num_attributes) {
      return Status::OutOfRange("attribute index out of range");
    }
    if (!seen.insert(a).second) {
      return Status::InvalidArgument("duplicate attribute in marginal spec");
    }
  }
  return Status::OK();
}

Result<size_t> CellCount(const std::vector<uint32_t>& domain_sizes) {
  size_t cells = 1;
  for (uint32_t ds : domain_sizes) {
    if (ds == 0) return Status::InvalidArgument("zero domain size");
    if (cells > (static_cast<size_t>(1) << 40) / ds) {
      return Status::InvalidArgument("marginal domain too large");
    }
    cells *= ds;
  }
  return cells;
}

}  // namespace

Result<MarginalSetEvaluator> MarginalSetEvaluator::Create(
    const Schema& schema, std::vector<MarginalSpec> specs) {
  MarginalSetEvaluator evaluator;
  evaluator.num_schema_attributes_ = schema.num_attributes();

  // Sorted union of every referenced attribute; one load per row each.
  std::vector<uint32_t> columns;
  for (const MarginalSpec& spec : specs) {
    IREDUCT_RETURN_NOT_OK(ValidateSpec(spec, schema.num_attributes()));
    columns.insert(columns.end(), spec.attributes.begin(),
                   spec.attributes.end());
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  evaluator.columns_ = std::move(columns);

  size_t offset = 0;
  evaluator.plans_.reserve(specs.size());
  for (MarginalSpec& spec : specs) {
    SpecPlan plan;
    plan.domain_sizes.reserve(spec.attributes.size());
    for (uint32_t a : spec.attributes) {
      plan.domain_sizes.push_back(schema.attribute(a).domain_size);
    }
    IREDUCT_ASSIGN_OR_RETURN(plan.cells, CellCount(plan.domain_sizes));
    // Row-major strides, first attribute varying slowest — identical cell
    // order to Marginal.
    std::vector<size_t> strides(spec.attributes.size());
    size_t stride = 1;
    for (size_t i = spec.attributes.size(); i-- > 0;) {
      strides[i] = stride;
      stride *= plan.domain_sizes[i];
    }
    plan.terms.reserve(spec.attributes.size());
    for (size_t i = 0; i < spec.attributes.size(); ++i) {
      const auto it = std::lower_bound(evaluator.columns_.begin(),
                                       evaluator.columns_.end(),
                                       spec.attributes[i]);
      plan.terms.emplace_back(
          static_cast<uint32_t>(it - evaluator.columns_.begin()), strides[i]);
    }
    plan.offset = offset;
    if (offset > (static_cast<size_t>(1) << 42) - plan.cells) {
      return Status::InvalidArgument("fused marginal table too large");
    }
    offset += plan.cells;
    plan.spec = std::move(spec);
    evaluator.plans_.push_back(std::move(plan));
  }
  evaluator.total_cells_ = offset;
  return evaluator;
}

void MarginalSetEvaluator::CountShard(const Dataset& dataset,
                                      std::span<const uint32_t> rows,
                                      size_t begin, size_t end,
                                      uint32_t* counts) const {
  // Raw column pointers for the referenced attributes only.
  std::vector<const uint16_t*> cols;
  cols.reserve(columns_.size());
  for (uint32_t c : columns_) cols.push_back(dataset.column(c).data());
  const uint32_t* row_idx = rows.empty() ? nullptr : rows.data();

  // Plan-major with same-arity plans processed two at a time. Census data
  // is Zipf-skewed, so consecutive rows keep hitting the same hot cells and
  // each ++table[cell] stalls on the store of the previous one; running two
  // plans' tables in one loop gives the core two independent increment
  // chains to overlap — something the per-marginal path cannot do. The
  // 1- and 2-attribute loops (every spec of the paper's tasks) are
  // specialized to keep them tight; cell totals are integers, so the
  // interleaving cannot change any count.
  size_t p = 0;
  while (p < plans_.size()) {
    const SpecPlan& a = plans_[p];
    const size_t arity = a.terms.size();
    const bool paired = (arity == 1 || arity == 2) && p + 1 < plans_.size() &&
                        plans_[p + 1].terms.size() == arity;
    uint32_t* const ta = counts + a.offset;
    if (paired && arity == 1) {
      const SpecPlan& b = plans_[p + 1];
      uint32_t* const tb = counts + b.offset;
      const uint16_t* const a0 = cols[a.terms[0].first];
      const uint16_t* const b0 = cols[b.terms[0].first];
      if (row_idx == nullptr) {
        for (size_t i = begin; i < end; ++i) {
          ++ta[a0[i]];
          ++tb[b0[i]];
        }
      } else {
        for (size_t i = begin; i < end; ++i) {
          const size_t r = row_idx[i];
          ++ta[a0[r]];
          ++tb[b0[r]];
        }
      }
      p += 2;
    } else if (paired && arity == 2) {
      const SpecPlan& b = plans_[p + 1];
      uint32_t* const tb = counts + b.offset;
      const uint16_t* const a0 = cols[a.terms[0].first];
      const uint16_t* const a1 = cols[a.terms[1].first];
      const uint16_t* const b0 = cols[b.terms[0].first];
      const uint16_t* const b1 = cols[b.terms[1].first];
      const size_t as0 = a.terms[0].second;
      const size_t bs0 = b.terms[0].second;
      if (row_idx == nullptr) {
        for (size_t i = begin; i < end; ++i) {
          ++ta[as0 * a0[i] + a1[i]];
          ++tb[bs0 * b0[i] + b1[i]];
        }
      } else {
        for (size_t i = begin; i < end; ++i) {
          const size_t r = row_idx[i];
          ++ta[as0 * a0[r] + a1[r]];
          ++tb[bs0 * b0[r] + b1[r]];
        }
      }
      p += 2;
    } else if (arity == 1) {
      const uint16_t* const a0 = cols[a.terms[0].first];
      if (row_idx == nullptr) {
        for (size_t i = begin; i < end; ++i) ++ta[a0[i]];
      } else {
        for (size_t i = begin; i < end; ++i) ++ta[a0[row_idx[i]]];
      }
      ++p;
    } else if (arity == 2) {
      const uint16_t* const a0 = cols[a.terms[0].first];
      const uint16_t* const a1 = cols[a.terms[1].first];
      const size_t as0 = a.terms[0].second;
      if (row_idx == nullptr) {
        for (size_t i = begin; i < end; ++i) ++ta[as0 * a0[i] + a1[i]];
      } else {
        for (size_t i = begin; i < end; ++i) {
          const size_t r = row_idx[i];
          ++ta[as0 * a0[r] + a1[r]];
        }
      }
      ++p;
    } else {
      for (size_t i = begin; i < end; ++i) {
        const size_t r = row_idx == nullptr ? i : row_idx[i];
        size_t cell = 0;
        for (const auto& [col, stride] : a.terms) {
          cell += stride * cols[col][r];
        }
        ++ta[cell];
      }
      ++p;
    }
  }
}

Result<std::vector<Marginal>> MarginalSetEvaluator::Compute(
    const Dataset& dataset, std::span<const uint32_t> rows,
    ThreadPool* pool) const {
  if (dataset.schema().num_attributes() < num_schema_attributes_) {
    return Status::InvalidArgument(
        "dataset has fewer attributes than the evaluation plan");
  }
  for (const SpecPlan& plan : plans_) {
    for (size_t i = 0; i < plan.spec.attributes.size(); ++i) {
      if (dataset.schema().attribute(plan.spec.attributes[i]).domain_size !=
          plan.domain_sizes[i]) {
        return Status::InvalidArgument(
            "dataset domain sizes do not match the evaluation plan");
      }
    }
  }
  const size_t n = rows.empty() ? dataset.num_rows() : rows.size();
  for (uint32_t r : rows) {
    if (r >= dataset.num_rows()) {
      return Status::OutOfRange("row index out of range");
    }
  }

  IREDUCT_SCOPED_TIMER(fused_timer, "marginals.fused_seconds");
  IREDUCT_METRIC_COUNT("marginals.fused_passes", 1);
  IREDUCT_METRIC_COUNT("marginals.fused_rows", n);
  const auto pass_start = std::chrono::steady_clock::now();

  // One shard per worker, but never shards so small that the per-shard
  // accumulator allocation dominates. Shard *count* only affects
  // wall-clock: cell counts are integers, so merging shard blocks in any
  // grouping yields the same totals and the final double tables are
  // bit-identical to the sequential pass.
  size_t num_shards = 1;
  if (pool != nullptr && pool->num_threads() > 1) {
    constexpr size_t kMinRowsPerShard = 1024;
    num_shards = std::min<size_t>(pool->num_threads(),
                                  std::max<size_t>(1, n / kMinRowsPerShard));
  }

  std::vector<uint64_t> totals(total_cells_, 0);
  if (num_shards <= 1) {
    std::vector<uint32_t> counts(total_cells_, 0);
    CountShard(dataset, rows, 0, n, counts.data());
    for (size_t c = 0; c < total_cells_; ++c) totals[c] = counts[c];
  } else {
    std::vector<std::vector<uint32_t>> shard_counts(num_shards);
    // Each worker writes only its own slot, so the timing vector needs no
    // lock; it is read after Wait() establishes the happens-before edge.
    std::vector<double> shard_seconds(num_shards, 0);
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t begin = n * s / num_shards;
      const size_t end = n * (s + 1) / num_shards;
      pool->Submit([this, &dataset, rows, begin, end, &shard_counts,
                    &shard_seconds, s] {
        const auto shard_start = std::chrono::steady_clock::now();
        shard_counts[s].assign(total_cells_, 0);
        CountShard(dataset, rows, begin, end, shard_counts[s].data());
        shard_seconds[s] = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - shard_start)
                               .count();
      });
    }
    pool->Wait();
#if IREDUCT_ENABLE_TRACING
    if (obs::MetricsRegistry::enabled()) {
      double total_seconds = 0;
      double max_seconds = 0;
      for (const double s : shard_seconds) {
        IREDUCT_METRIC_OBSERVE("marginals.shard_seconds", s);
        total_seconds += s;
        max_seconds = std::max(max_seconds, s);
      }
      const double mean_seconds = total_seconds / num_shards;
      // max/mean ≈ 1 means even shards; > 1 quantifies straggler loss.
      if (mean_seconds > 0) {
        IREDUCT_METRIC_GAUGE_SET("marginals.shard_imbalance",
                                 max_seconds / mean_seconds);
      }
    }
#endif
    // Fixed shard order; with integer counts any order gives the same sum.
    for (size_t s = 0; s < num_shards; ++s) {
      const uint32_t* src = shard_counts[s].data();
      for (size_t c = 0; c < total_cells_; ++c) totals[c] += src[c];
    }
  }

  std::vector<Marginal> marginals;
  marginals.reserve(plans_.size());
  for (const SpecPlan& plan : plans_) {
    std::vector<double> counts(plan.cells);
    for (size_t c = 0; c < plan.cells; ++c) {
      // Integer-valued, < 2^53: exactly the double the sequential += 1.0
      // accumulation of Marginal::Compute produces.
      counts[c] = static_cast<double>(totals[plan.offset + c]);
    }
    IREDUCT_ASSIGN_OR_RETURN(
        Marginal m, Marginal::FromCounts(plan.spec, plan.domain_sizes,
                                         std::move(counts)));
    marginals.push_back(std::move(m));
  }
  const double pass_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pass_start)
          .count();
  if (pass_seconds > 0) {
    IREDUCT_METRIC_GAUGE_SET("marginals.rows_per_second",
                             static_cast<double>(n) / pass_seconds);
  }
  return marginals;
}

}  // namespace ireduct
