#include "marginals/marginal_evaluator.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_set>

#include "common/arena.h"
#include "common/logging.h"
#include "common/simd_kernels.h"
#include "data/columnar.h"
#include "obs/metrics.h"

namespace ireduct {

namespace {

// Plans with more cells than this count directly instead of striping:
// beyond it the four private lane tables stop fitting in cache and the
// scratch clear/merge dominates, and an uncapped bound would let one huge
// 2-way plan size gigabytes of per-shard scratch. Totals are unaffected —
// striping is a perf mode, not a semantic one.
constexpr size_t kMaxStripedCells = size_t{1} << 21;

// Mirrors the per-spec validation of Marginal::Compute so the fused path
// rejects exactly what the per-marginal path rejects.
Status ValidateSpec(const MarginalSpec& spec, size_t num_attributes) {
  if (spec.attributes.empty()) {
    return Status::InvalidArgument("marginal spec needs >= 1 attribute");
  }
  std::unordered_set<uint32_t> seen;
  for (uint32_t a : spec.attributes) {
    if (a >= num_attributes) {
      return Status::OutOfRange("attribute index out of range");
    }
    if (!seen.insert(a).second) {
      return Status::InvalidArgument("duplicate attribute in marginal spec");
    }
  }
  return Status::OK();
}

Result<size_t> CellCount(const std::vector<uint32_t>& domain_sizes) {
  size_t cells = 1;
  for (uint32_t ds : domain_sizes) {
    if (ds == 0) return Status::InvalidArgument("zero domain size");
    if (cells > (static_cast<size_t>(1) << 40) / ds) {
      return Status::InvalidArgument("marginal domain too large");
    }
    cells *= ds;
  }
  return cells;
}

}  // namespace

Result<MarginalSetEvaluator> MarginalSetEvaluator::Create(
    const Schema& schema, std::vector<MarginalSpec> specs) {
  MarginalSetEvaluator evaluator;
  evaluator.num_schema_attributes_ = schema.num_attributes();

  // Sorted union of every referenced attribute; one load per row each.
  std::vector<uint32_t> columns;
  for (const MarginalSpec& spec : specs) {
    IREDUCT_RETURN_NOT_OK(ValidateSpec(spec, schema.num_attributes()));
    columns.insert(columns.end(), spec.attributes.begin(),
                   spec.attributes.end());
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  evaluator.columns_ = std::move(columns);

  size_t offset = 0;
  evaluator.plans_.reserve(specs.size());
  for (MarginalSpec& spec : specs) {
    SpecPlan plan;
    plan.domain_sizes.reserve(spec.attributes.size());
    for (uint32_t a : spec.attributes) {
      plan.domain_sizes.push_back(schema.attribute(a).domain_size);
    }
    IREDUCT_ASSIGN_OR_RETURN(plan.cells, CellCount(plan.domain_sizes));
    // Row-major strides, first attribute varying slowest — identical cell
    // order to Marginal.
    std::vector<size_t> strides(spec.attributes.size());
    size_t stride = 1;
    for (size_t i = spec.attributes.size(); i-- > 0;) {
      strides[i] = stride;
      stride *= plan.domain_sizes[i];
    }
    plan.terms.reserve(spec.attributes.size());
    for (size_t i = 0; i < spec.attributes.size(); ++i) {
      const auto it = std::lower_bound(evaluator.columns_.begin(),
                                       evaluator.columns_.end(),
                                       spec.attributes[i]);
      plan.terms.emplace_back(
          static_cast<uint32_t>(it - evaluator.columns_.begin()), strides[i]);
    }
    plan.offset = offset;
    if (offset > (static_cast<size_t>(1) << 42) - plan.cells) {
      return Status::InvalidArgument("fused marginal table too large");
    }
    offset += plan.cells;
    if (plan.cells <= kMaxStripedCells) {
      evaluator.max_kernel_cells_ =
          std::max(evaluator.max_kernel_cells_, plan.cells);
    }
    plan.spec = std::move(spec);
    evaluator.plans_.push_back(std::move(plan));
  }
  evaluator.total_cells_ = offset;
  return evaluator;
}

void MarginalSetEvaluator::CountShard(const Dataset& dataset,
                                      std::span<const uint32_t> rows,
                                      size_t begin, size_t end,
                                      uint32_t* counts) const {
  // Raw column pointers for the referenced attributes only.
  std::vector<const uint16_t*> cols;
  cols.reserve(columns_.size());
  for (uint32_t c : columns_) cols.push_back(dataset.column(c).data());
  CountColumns(cols.data(), rows.empty() ? nullptr : rows.data(), begin, end,
               counts);
}

void MarginalSetEvaluator::CountColumns(const uint16_t* const* cols,
                                        const uint32_t* row_idx, size_t begin,
                                        size_t end, uint32_t* counts) const {
  const size_t nrows = end - begin;

  // Lane scratch for the striped counting kernels, sized for the widest
  // striping-eligible plan and reused across plans. Call-local lifetime:
  // the scratch is dead once the plan's merge into `counts` finishes, so
  // Reset-at-entry is safe even when one pool worker runs several shards.
  thread_local Arena scratch_arena;
  scratch_arena.Reset();
  uint32_t* lane_scratch = nullptr;
  if (max_kernel_cells_ > 0) {
    lane_scratch =
        scratch_arena.Alloc<uint32_t>(simd::kBatchLanes * max_kernel_cells_);
  }

  // Plan-major: every plan goes through a dispatched counting kernel —
  // the fixed two-column CountPlan for arities 1/2 (all of the paper's
  // tasks), CountPlanN for wider marginals. Census data is Zipf-skewed, so
  // consecutive rows keep hitting the same hot cells and a naive
  // ++table[cell] serializes on store-to-load forwarding; the kernels
  // stripe increments across four private tables (and on AVX2 compute the
  // cell indices 16 rows at a time) and merge in fixed lane order. Counts
  // are integers, so striping cannot change any total. Striping only pays
  // when the row range dwarfs a cache-resident table; small shards and
  // huge tables count directly into `counts`.
  std::vector<const uint16_t*> plan_cols;
  std::vector<size_t> plan_strides;
  for (const SpecPlan& plan : plans_) {
    const size_t arity = plan.terms.size();
    uint32_t* const table = counts + plan.offset;
    const bool striped = nrows >= 4 * plan.cells && plan.cells > 1 &&
                         plan.cells <= kMaxStripedCells;
    if (arity == 1 || arity == 2) {
      simd::CountPlanArgs args;
      args.col0 = cols[plan.terms[0].first];
      args.col1 = arity == 2 ? cols[plan.terms[1].first] : nullptr;
      args.row_idx = row_idx;
      args.begin = begin;
      args.end = end;
      args.stride0 = plan.terms[0].second;
      args.counts = table;
      args.cells = plan.cells;
      args.lane_scratch = striped ? lane_scratch : nullptr;
      simd::CountPlan(args);
    } else {
      plan_cols.clear();
      plan_strides.clear();
      for (const auto& [col, stride] : plan.terms) {
        plan_cols.push_back(cols[col]);
        plan_strides.push_back(stride);
      }
      simd::CountPlanNArgs args;
      args.cols = plan_cols.data();
      args.strides = plan_strides.data();
      args.arity = arity;
      args.row_idx = row_idx;
      args.begin = begin;
      args.end = end;
      args.counts = table;
      args.cells = plan.cells;
      args.lane_scratch = striped ? lane_scratch : nullptr;
      simd::CountPlanN(args);
    }
  }
}

Result<std::vector<Marginal>> MarginalSetEvaluator::Compute(
    const Dataset& dataset, std::span<const uint32_t> rows,
    ThreadPool* pool) const {
  if (dataset.schema().num_attributes() < num_schema_attributes_) {
    return Status::InvalidArgument(
        "dataset has fewer attributes than the evaluation plan");
  }
  for (const SpecPlan& plan : plans_) {
    for (size_t i = 0; i < plan.spec.attributes.size(); ++i) {
      if (dataset.schema().attribute(plan.spec.attributes[i]).domain_size !=
          plan.domain_sizes[i]) {
        return Status::InvalidArgument(
            "dataset domain sizes do not match the evaluation plan");
      }
    }
  }
  const size_t n = rows.empty() ? dataset.num_rows() : rows.size();
  for (uint32_t r : rows) {
    if (r >= dataset.num_rows()) {
      return Status::OutOfRange("row index out of range");
    }
  }

  IREDUCT_SCOPED_TIMER(fused_timer, "marginals.fused_seconds");
  IREDUCT_METRIC_COUNT("marginals.fused_passes", 1);
  IREDUCT_METRIC_COUNT("marginals.fused_rows", n);
  const auto pass_start = std::chrono::steady_clock::now();

  // One shard per worker, but never shards so small that the per-shard
  // accumulator allocation dominates — and never more shards than the
  // machine has cores. A pool can legitimately be wider than the CPU
  // (callers size pools for their workload, not this pass), but extra
  // shards on an oversubscribed machine are pure overhead: each one is a
  // full accumulator block to allocate, fill, and merge with zero added
  // parallelism. That overhead is exactly what pushed the fig08/09
  // end-to-end run below 1x on single-core CI runners. Shard *count* only
  // affects wall-clock: cell counts are integers, so merging shard blocks
  // in any grouping yields the same totals and the final double tables are
  // bit-identical to the sequential pass.
  size_t num_shards = 1;
  if (pool != nullptr && pool->num_threads() > 1) {
    constexpr size_t kMinRowsPerShard = 1024;
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = pool->num_threads();
    num_shards = std::min<size_t>(
        std::min<size_t>(pool->num_threads(), hw),
        std::max<size_t>(1, n / kMinRowsPerShard));
  }

  std::vector<uint64_t> totals(total_cells_, 0);
  if (num_shards <= 1) {
    std::vector<uint32_t> counts(total_cells_, 0);
    CountShard(dataset, rows, 0, n, counts.data());
    for (size_t c = 0; c < total_cells_; ++c) totals[c] = counts[c];
  } else {
    std::vector<std::vector<uint32_t>> shard_counts(num_shards);
    // Each worker writes only its own slot, so the timing vector needs no
    // lock; it is read after Wait() establishes the happens-before edge.
    std::vector<double> shard_seconds(num_shards, 0);
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t begin = n * s / num_shards;
      const size_t end = n * (s + 1) / num_shards;
      pool->Submit([this, &dataset, rows, begin, end, &shard_counts,
                    &shard_seconds, s] {
        const auto shard_start = std::chrono::steady_clock::now();
        shard_counts[s].assign(total_cells_, 0);
        CountShard(dataset, rows, begin, end, shard_counts[s].data());
        shard_seconds[s] = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - shard_start)
                               .count();
      });
    }
    pool->Wait();
#if IREDUCT_ENABLE_TRACING
    if (obs::MetricsRegistry::enabled()) {
      double total_seconds = 0;
      double max_seconds = 0;
      for (const double s : shard_seconds) {
        IREDUCT_METRIC_OBSERVE("marginals.shard_seconds", s);
        total_seconds += s;
        max_seconds = std::max(max_seconds, s);
      }
      const double mean_seconds = total_seconds / num_shards;
      // max/mean ≈ 1 means even shards; > 1 quantifies straggler loss.
      if (mean_seconds > 0) {
        IREDUCT_METRIC_GAUGE_SET("marginals.shard_imbalance",
                                 max_seconds / mean_seconds);
      }
    }
#endif
    // Fixed shard order; with integer counts any order gives the same sum.
    for (size_t s = 0; s < num_shards; ++s) {
      const uint32_t* src = shard_counts[s].data();
      for (size_t c = 0; c < total_cells_; ++c) totals[c] += src[c];
    }
  }

  std::vector<Marginal> marginals;
  marginals.reserve(plans_.size());
  for (const SpecPlan& plan : plans_) {
    std::vector<double> counts(plan.cells);
    for (size_t c = 0; c < plan.cells; ++c) {
      // Integer-valued, < 2^53: exactly the double the sequential += 1.0
      // accumulation of Marginal::Compute produces.
      counts[c] = static_cast<double>(totals[plan.offset + c]);
    }
    IREDUCT_ASSIGN_OR_RETURN(
        Marginal m, Marginal::FromCounts(plan.spec, plan.domain_sizes,
                                         std::move(counts)));
    marginals.push_back(std::move(m));
  }
  const double pass_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pass_start)
          .count();
  if (pass_seconds > 0) {
    IREDUCT_METRIC_GAUGE_SET("marginals.rows_per_second",
                             static_cast<double>(n) / pass_seconds);
  }
  return marginals;
}

Result<std::vector<Marginal>> MarginalSetEvaluator::ComputeStreaming(
    const ColumnarFile& file, ThreadPool* pool) const {
  const Schema& schema = file.schema();
  if (schema.num_attributes() < num_schema_attributes_) {
    return Status::InvalidArgument(
        "columnar file has fewer attributes than the evaluation plan");
  }
  for (const SpecPlan& plan : plans_) {
    for (size_t i = 0; i < plan.spec.attributes.size(); ++i) {
      if (schema.attribute(plan.spec.attributes[i]).domain_size !=
          plan.domain_sizes[i]) {
        return Status::InvalidArgument(
            "columnar file domain sizes do not match the evaluation plan");
      }
    }
  }
  const uint64_t n = file.num_rows();
  const uint32_t num_blocks = file.num_blocks();
  const size_t block_rows = file.block_rows();
  const size_t ncols = columns_.size();

  IREDUCT_SCOPED_TIMER(stream_timer, "marginals.streaming_seconds");
  IREDUCT_METRIC_COUNT("marginals.streaming_passes", 1);
  IREDUCT_METRIC_COUNT("marginals.streaming_rows", n);
  const auto pass_start = std::chrono::steady_clock::now();

  // Same shard clamp as Compute, against the rows of one (full) block.
  size_t num_shards = 1;
  if (pool != nullptr && pool->num_threads() > 1) {
    constexpr size_t kMinRowsPerShard = 1024;
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = pool->num_threads();
    num_shards =
        std::min<size_t>(std::min<size_t>(pool->num_threads(), hw),
                         std::max<size_t>(1, block_rows / kMinRowsPerShard));
  }

  // Double-buffered block decode: while shard jobs count block b out of
  // one slot, a decode job fills the other slot with block b+1; the
  // pool->Wait() at the bottom of the loop joins both. Each slot holds
  // only the referenced columns — unreferenced columns are never decoded.
  struct Slot {
    std::vector<std::vector<uint16_t>> cols;
    Status status = Status::OK();
  };
  std::array<Slot, 2> slots;
  for (Slot& slot : slots) {
    slot.cols.resize(ncols);
    for (auto& col : slot.cols) col.resize(block_rows);
  }
  const auto decode_block = [&](uint32_t b, Slot& slot) {
    slot.status = Status::OK();
    for (size_t i = 0; i < ncols; ++i) {
      Status s = file.DecodeChunk(columns_[i], b, slot.cols[i].data());
      if (!s.ok()) {
        slot.status = std::move(s);
        return;
      }
    }
  };

  // Per-shard uint32 accumulators live across blocks and merge once at the
  // end — the same overflow headroom (2^32 rows per shard) and the same
  // fixed-order integer merge as the in-memory pass, which is what keeps
  // the totals bit-identical to Compute at any thread count or block size.
  std::vector<std::vector<uint32_t>> shard_counts(num_shards);
  for (auto& counts : shard_counts) counts.assign(total_cells_, 0);

  if (num_blocks > 0) decode_block(0, slots[0]);
  std::vector<const uint16_t*> ptrs(ncols);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    Slot& cur = slots[b % 2];
    Slot& next = slots[(b + 1) % 2];
    IREDUCT_RETURN_NOT_OK(cur.status);
    const size_t rows_b = file.RowsInBlock(b);
    for (size_t i = 0; i < ncols; ++i) ptrs[i] = cur.cols[i].data();
    if (pool != nullptr) {
      if (b + 1 < num_blocks) {
        pool->Submit([&decode_block, &next, nb = b + 1] {
          decode_block(nb, next);
        });
      }
      for (size_t s = 0; s < num_shards; ++s) {
        const size_t begin = rows_b * s / num_shards;
        const size_t end = rows_b * (s + 1) / num_shards;
        pool->Submit([this, &ptrs, &shard_counts, begin, end, s] {
          CountColumns(ptrs.data(), nullptr, begin, end,
                       shard_counts[s].data());
        });
      }
      pool->Wait();
    } else {
      CountColumns(ptrs.data(), nullptr, 0, rows_b, shard_counts[0].data());
      if (b + 1 < num_blocks) decode_block(b + 1, slots[(b + 1) % 2]);
    }
  }

  std::vector<uint64_t> totals(total_cells_, 0);
  for (size_t s = 0; s < num_shards; ++s) {
    const uint32_t* src = shard_counts[s].data();
    for (size_t c = 0; c < total_cells_; ++c) totals[c] += src[c];
  }

  std::vector<Marginal> marginals;
  marginals.reserve(plans_.size());
  for (const SpecPlan& plan : plans_) {
    std::vector<double> counts(plan.cells);
    for (size_t c = 0; c < plan.cells; ++c) {
      counts[c] = static_cast<double>(totals[plan.offset + c]);
    }
    IREDUCT_ASSIGN_OR_RETURN(
        Marginal m, Marginal::FromCounts(plan.spec, plan.domain_sizes,
                                         std::move(counts)));
    marginals.push_back(std::move(m));
  }
  const double pass_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pass_start)
          .count();
  if (pass_seconds > 0) {
    IREDUCT_METRIC_GAUGE_SET("marginals.streaming_rows_per_second",
                             static_cast<double>(n) / pass_seconds);
  }
  return marginals;
}

}  // namespace ireduct
