#include "marginals/marginal_evaluator.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_set>

#include "common/arena.h"
#include "common/logging.h"
#include "common/simd_kernels.h"
#include "obs/metrics.h"

namespace ireduct {

namespace {

// Mirrors the per-spec validation of Marginal::Compute so the fused path
// rejects exactly what the per-marginal path rejects.
Status ValidateSpec(const MarginalSpec& spec, size_t num_attributes) {
  if (spec.attributes.empty()) {
    return Status::InvalidArgument("marginal spec needs >= 1 attribute");
  }
  std::unordered_set<uint32_t> seen;
  for (uint32_t a : spec.attributes) {
    if (a >= num_attributes) {
      return Status::OutOfRange("attribute index out of range");
    }
    if (!seen.insert(a).second) {
      return Status::InvalidArgument("duplicate attribute in marginal spec");
    }
  }
  return Status::OK();
}

Result<size_t> CellCount(const std::vector<uint32_t>& domain_sizes) {
  size_t cells = 1;
  for (uint32_t ds : domain_sizes) {
    if (ds == 0) return Status::InvalidArgument("zero domain size");
    if (cells > (static_cast<size_t>(1) << 40) / ds) {
      return Status::InvalidArgument("marginal domain too large");
    }
    cells *= ds;
  }
  return cells;
}

}  // namespace

Result<MarginalSetEvaluator> MarginalSetEvaluator::Create(
    const Schema& schema, std::vector<MarginalSpec> specs) {
  MarginalSetEvaluator evaluator;
  evaluator.num_schema_attributes_ = schema.num_attributes();

  // Sorted union of every referenced attribute; one load per row each.
  std::vector<uint32_t> columns;
  for (const MarginalSpec& spec : specs) {
    IREDUCT_RETURN_NOT_OK(ValidateSpec(spec, schema.num_attributes()));
    columns.insert(columns.end(), spec.attributes.begin(),
                   spec.attributes.end());
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  evaluator.columns_ = std::move(columns);

  size_t offset = 0;
  evaluator.plans_.reserve(specs.size());
  for (MarginalSpec& spec : specs) {
    SpecPlan plan;
    plan.domain_sizes.reserve(spec.attributes.size());
    for (uint32_t a : spec.attributes) {
      plan.domain_sizes.push_back(schema.attribute(a).domain_size);
    }
    IREDUCT_ASSIGN_OR_RETURN(plan.cells, CellCount(plan.domain_sizes));
    // Row-major strides, first attribute varying slowest — identical cell
    // order to Marginal.
    std::vector<size_t> strides(spec.attributes.size());
    size_t stride = 1;
    for (size_t i = spec.attributes.size(); i-- > 0;) {
      strides[i] = stride;
      stride *= plan.domain_sizes[i];
    }
    plan.terms.reserve(spec.attributes.size());
    for (size_t i = 0; i < spec.attributes.size(); ++i) {
      const auto it = std::lower_bound(evaluator.columns_.begin(),
                                       evaluator.columns_.end(),
                                       spec.attributes[i]);
      plan.terms.emplace_back(
          static_cast<uint32_t>(it - evaluator.columns_.begin()), strides[i]);
    }
    plan.offset = offset;
    if (offset > (static_cast<size_t>(1) << 42) - plan.cells) {
      return Status::InvalidArgument("fused marginal table too large");
    }
    offset += plan.cells;
    if (plan.terms.size() <= 2) {
      evaluator.max_kernel_cells_ =
          std::max(evaluator.max_kernel_cells_, plan.cells);
    }
    plan.spec = std::move(spec);
    evaluator.plans_.push_back(std::move(plan));
  }
  evaluator.total_cells_ = offset;
  return evaluator;
}

void MarginalSetEvaluator::CountShard(const Dataset& dataset,
                                      std::span<const uint32_t> rows,
                                      size_t begin, size_t end,
                                      uint32_t* counts) const {
  // Raw column pointers for the referenced attributes only.
  std::vector<const uint16_t*> cols;
  cols.reserve(columns_.size());
  for (uint32_t c : columns_) cols.push_back(dataset.column(c).data());
  const uint32_t* row_idx = rows.empty() ? nullptr : rows.data();
  const size_t nrows = end - begin;

  // Lane scratch for the striped counting kernels, sized for the widest
  // arity<=2 plan and reused across plans. Call-local lifetime: the
  // scratch is dead once the plan's merge into `counts` finishes, so
  // Reset-at-entry is safe even when one pool worker runs several shards.
  thread_local Arena scratch_arena;
  scratch_arena.Reset();
  uint32_t* lane_scratch = nullptr;
  if (max_kernel_cells_ > 0) {
    lane_scratch =
        scratch_arena.Alloc<uint32_t>(simd::kBatchLanes * max_kernel_cells_);
  }

  // Plan-major: every 1- and 2-attribute plan (all of the paper's tasks)
  // goes through the dispatched counting kernel. Census data is
  // Zipf-skewed, so consecutive rows keep hitting the same hot cells and a
  // naive ++table[cell] serializes on store-to-load forwarding; the kernel
  // stripes increments across four private tables (and on AVX2 computes
  // the cell indices 16 rows at a time) and merges in fixed lane order.
  // Counts are integers, so striping cannot change any total. Striping
  // only pays when the row range dwarfs the table; small shards count
  // directly into `counts`.
  for (const SpecPlan& plan : plans_) {
    const size_t arity = plan.terms.size();
    uint32_t* const table = counts + plan.offset;
    if (arity == 1 || arity == 2) {
      simd::CountPlanArgs args;
      args.col0 = cols[plan.terms[0].first];
      args.col1 = arity == 2 ? cols[plan.terms[1].first] : nullptr;
      args.row_idx = row_idx;
      args.begin = begin;
      args.end = end;
      args.stride0 = plan.terms[0].second;
      args.counts = table;
      args.cells = plan.cells;
      const bool striped = nrows >= 4 * plan.cells && plan.cells > 1;
      args.lane_scratch = striped ? lane_scratch : nullptr;
      simd::CountPlan(args);
    } else {
      for (size_t i = begin; i < end; ++i) {
        const size_t r = row_idx == nullptr ? i : row_idx[i];
        size_t cell = 0;
        for (const auto& [col, stride] : plan.terms) {
          cell += stride * cols[col][r];
        }
        ++table[cell];
      }
    }
  }
}

Result<std::vector<Marginal>> MarginalSetEvaluator::Compute(
    const Dataset& dataset, std::span<const uint32_t> rows,
    ThreadPool* pool) const {
  if (dataset.schema().num_attributes() < num_schema_attributes_) {
    return Status::InvalidArgument(
        "dataset has fewer attributes than the evaluation plan");
  }
  for (const SpecPlan& plan : plans_) {
    for (size_t i = 0; i < plan.spec.attributes.size(); ++i) {
      if (dataset.schema().attribute(plan.spec.attributes[i]).domain_size !=
          plan.domain_sizes[i]) {
        return Status::InvalidArgument(
            "dataset domain sizes do not match the evaluation plan");
      }
    }
  }
  const size_t n = rows.empty() ? dataset.num_rows() : rows.size();
  for (uint32_t r : rows) {
    if (r >= dataset.num_rows()) {
      return Status::OutOfRange("row index out of range");
    }
  }

  IREDUCT_SCOPED_TIMER(fused_timer, "marginals.fused_seconds");
  IREDUCT_METRIC_COUNT("marginals.fused_passes", 1);
  IREDUCT_METRIC_COUNT("marginals.fused_rows", n);
  const auto pass_start = std::chrono::steady_clock::now();

  // One shard per worker, but never shards so small that the per-shard
  // accumulator allocation dominates — and never more shards than the
  // machine has cores. A pool can legitimately be wider than the CPU
  // (callers size pools for their workload, not this pass), but extra
  // shards on an oversubscribed machine are pure overhead: each one is a
  // full accumulator block to allocate, fill, and merge with zero added
  // parallelism. That overhead is exactly what pushed the fig08/09
  // end-to-end run below 1x on single-core CI runners. Shard *count* only
  // affects wall-clock: cell counts are integers, so merging shard blocks
  // in any grouping yields the same totals and the final double tables are
  // bit-identical to the sequential pass.
  size_t num_shards = 1;
  if (pool != nullptr && pool->num_threads() > 1) {
    constexpr size_t kMinRowsPerShard = 1024;
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = pool->num_threads();
    num_shards = std::min<size_t>(
        std::min<size_t>(pool->num_threads(), hw),
        std::max<size_t>(1, n / kMinRowsPerShard));
  }

  std::vector<uint64_t> totals(total_cells_, 0);
  if (num_shards <= 1) {
    std::vector<uint32_t> counts(total_cells_, 0);
    CountShard(dataset, rows, 0, n, counts.data());
    for (size_t c = 0; c < total_cells_; ++c) totals[c] = counts[c];
  } else {
    std::vector<std::vector<uint32_t>> shard_counts(num_shards);
    // Each worker writes only its own slot, so the timing vector needs no
    // lock; it is read after Wait() establishes the happens-before edge.
    std::vector<double> shard_seconds(num_shards, 0);
    for (size_t s = 0; s < num_shards; ++s) {
      const size_t begin = n * s / num_shards;
      const size_t end = n * (s + 1) / num_shards;
      pool->Submit([this, &dataset, rows, begin, end, &shard_counts,
                    &shard_seconds, s] {
        const auto shard_start = std::chrono::steady_clock::now();
        shard_counts[s].assign(total_cells_, 0);
        CountShard(dataset, rows, begin, end, shard_counts[s].data());
        shard_seconds[s] = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - shard_start)
                               .count();
      });
    }
    pool->Wait();
#if IREDUCT_ENABLE_TRACING
    if (obs::MetricsRegistry::enabled()) {
      double total_seconds = 0;
      double max_seconds = 0;
      for (const double s : shard_seconds) {
        IREDUCT_METRIC_OBSERVE("marginals.shard_seconds", s);
        total_seconds += s;
        max_seconds = std::max(max_seconds, s);
      }
      const double mean_seconds = total_seconds / num_shards;
      // max/mean ≈ 1 means even shards; > 1 quantifies straggler loss.
      if (mean_seconds > 0) {
        IREDUCT_METRIC_GAUGE_SET("marginals.shard_imbalance",
                                 max_seconds / mean_seconds);
      }
    }
#endif
    // Fixed shard order; with integer counts any order gives the same sum.
    for (size_t s = 0; s < num_shards; ++s) {
      const uint32_t* src = shard_counts[s].data();
      for (size_t c = 0; c < total_cells_; ++c) totals[c] += src[c];
    }
  }

  std::vector<Marginal> marginals;
  marginals.reserve(plans_.size());
  for (const SpecPlan& plan : plans_) {
    std::vector<double> counts(plan.cells);
    for (size_t c = 0; c < plan.cells; ++c) {
      // Integer-valued, < 2^53: exactly the double the sequential += 1.0
      // accumulation of Marginal::Compute produces.
      counts[c] = static_cast<double>(totals[plan.offset + c]);
    }
    IREDUCT_ASSIGN_OR_RETURN(
        Marginal m, Marginal::FromCounts(plan.spec, plan.domain_sizes,
                                         std::move(counts)));
    marginals.push_back(std::move(m));
  }
  const double pass_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    pass_start)
          .count();
  if (pass_seconds > 0) {
    IREDUCT_METRIC_GAUGE_SET("marginals.rows_per_second",
                             static_cast<double>(n) / pass_seconds);
  }
  return marginals;
}

}  // namespace ireduct
