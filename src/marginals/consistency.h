// Mutual consistency across a noisy marginal set (paper Conclusion: "the
// noise introduced for privacy may produce marginals that are infeasible"
// — e.g. the published {Age} marginal disagreeing with the Age-projection
// of the published {Age, Gender} marginal).
//
// MakeMutuallyConsistent runs an alternating-projection scheme: in each
// round, every subset pair (coarse ⊆ fine) first averages the coarse
// table with the fine table's projection (both are unbiased estimates of
// the same counts), then redistributes the fine table so its projection
// matches (FitProjection); totals are re-aligned each round. This is a
// heuristic least-squares repair (the exact joint LS problem is the
// Barak et al. LP); the discrepancy measure below is driven to the
// requested tolerance or the round limit.
#ifndef IREDUCT_MARGINALS_CONSISTENCY_H_
#define IREDUCT_MARGINALS_CONSISTENCY_H_

#include <span>
#include <vector>

#include "common/result.h"
#include "marginals/marginal.h"

namespace ireduct {

struct ConsistencyOptions {
  /// Maximum alternating rounds.
  int max_rounds = 50;
  /// Stop when MaxProjectionDiscrepancy falls below this.
  double tolerance = 1e-6;
  /// Align every marginal's total to this value each round (e.g. the
  /// public |T|); non-positive means "use the mean of the noisy totals".
  double target_total = 0;
};

/// Largest absolute cell disagreement between any marginal and the
/// projection of any finer marginal onto it (0 for singleton sets or sets
/// without subset pairs).
double MaxProjectionDiscrepancy(std::span<const Marginal> marginals);

/// Repairs the set so all subset-pair projections (and totals) agree.
/// Returns the repaired set; fails only on malformed inputs.
Result<std::vector<Marginal>> MakeMutuallyConsistent(
    std::vector<Marginal> marginals, const ConsistencyOptions& options);

}  // namespace ireduct

#endif  // IREDUCT_MARGINALS_CONSISTENCY_H_
