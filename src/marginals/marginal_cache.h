// Process-wide cache of true marginal tables.
//
// The figure benches sweep mechanisms × epsilons × trials over the same
// census datasets, and every sweep point needs the same true marginals —
// historically recomputed from scratch per CensusSetup. MarginalCache
// memoizes computed tables keyed by (dataset fingerprint, spec), so the
// tables for a given dataset are derived once per process and every later
// request is a copy.
//
// Missing specs of one request are computed together in a single fused
// MarginalSetEvaluator pass (optionally sharded on a ThreadPool), so even
// the cold path beats a per-marginal scan loop. Cached tables are
// bit-identical to Marginal::Compute: the fused pass has an exact parity
// guarantee, and the cache only ever stores what that pass produced.
#ifndef IREDUCT_MARGINALS_MARGINAL_CACHE_H_
#define IREDUCT_MARGINALS_MARGINAL_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "marginals/marginal.h"

namespace ireduct {

/// Thread-safe memo of computed marginals. Entries live for the cache's
/// lifetime (no eviction — the evaluation workloads touch a handful of
/// datasets); Clear() drops everything.
class MarginalCache {
 public:
  /// The shared process-wide instance the benches use.
  static MarginalCache& Global();

  /// Returns the marginals for `specs` over `dataset`, in spec order —
  /// cached copies where available, otherwise computed in one fused pass
  /// (sharded on `pool` when non-null) and cached. Fingerprints the
  /// dataset internally; prefer the explicit-fingerprint overload when
  /// calling repeatedly for one dataset.
  Result<std::vector<Marginal>> GetOrCompute(
      const Dataset& dataset, std::span<const MarginalSpec> specs,
      ThreadPool* pool = nullptr);

  /// Same, with the caller-supplied `fingerprint` standing in for
  /// Dataset::Fingerprint() (which costs a full data scan).
  Result<std::vector<Marginal>> GetOrCompute(
      uint64_t fingerprint, const Dataset& dataset,
      std::span<const MarginalSpec> specs, ThreadPool* pool = nullptr);

  /// Number of cached marginal tables.
  size_t size() const;

  /// Drops every entry.
  void Clear();

  MarginalCache() = default;
  MarginalCache(const MarginalCache&) = delete;
  MarginalCache& operator=(const MarginalCache&) = delete;

 private:
  // (fingerprint, spec attributes) → computed table. Marginals are stored
  // behind shared_ptr so lookups can copy the table outside the lock.
  using Key = std::pair<uint64_t, std::vector<uint32_t>>;

  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<const Marginal>> entries_;
};

}  // namespace ireduct

#endif  // IREDUCT_MARGINALS_MARGINAL_CACHE_H_
