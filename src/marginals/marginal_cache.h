// Process-wide cache of true marginal tables.
//
// The figure benches sweep mechanisms × epsilons × trials over the same
// census datasets, and every sweep point needs the same true marginals —
// historically recomputed from scratch per CensusSetup. MarginalCache
// memoizes computed tables keyed by (dataset fingerprint, spec), so the
// tables for a given dataset are derived once per process and every later
// request is a copy.
//
// Missing specs of one request are computed together in a single fused
// MarginalSetEvaluator pass (optionally sharded on a ThreadPool), so even
// the cold path beats a per-marginal scan loop. Cached tables are
// bit-identical to Marginal::Compute: the fused pass has an exact parity
// guarantee, and the cache only ever stores what that pass produced.
#ifndef IREDUCT_MARGINALS_MARGINAL_CACHE_H_
#define IREDUCT_MARGINALS_MARGINAL_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "marginals/marginal.h"

namespace ireduct {

/// Thread-safe memo of computed marginals with an optional byte budget.
/// With no budget (the default) entries live for the cache's lifetime —
/// the evaluation workloads touch a handful of datasets. With a budget,
/// least-recently-used tables are evicted until the estimated footprint
/// fits; eviction only drops cached copies, never correctness (an evicted
/// table is simply recomputed on the next request). Clear() drops
/// everything.
class MarginalCache {
 public:
  /// The shared process-wide instance the benches use. Its byte budget is
  /// read once from the IREDUCT_CACHE_BYTES environment variable (bytes;
  /// unset, empty or 0 means unlimited).
  static MarginalCache& Global();

  /// Returns the marginals for `specs` over `dataset`, in spec order —
  /// cached copies where available, otherwise computed in one fused pass
  /// (sharded on `pool` when non-null) and cached. Fingerprints the
  /// dataset internally; prefer the explicit-fingerprint overload when
  /// calling repeatedly for one dataset.
  Result<std::vector<Marginal>> GetOrCompute(
      const Dataset& dataset, std::span<const MarginalSpec> specs,
      ThreadPool* pool = nullptr);

  /// Same, with the caller-supplied `fingerprint` standing in for
  /// Dataset::Fingerprint() (which costs a full data scan).
  Result<std::vector<Marginal>> GetOrCompute(
      uint64_t fingerprint, const Dataset& dataset,
      std::span<const MarginalSpec> specs, ThreadPool* pool = nullptr);

  /// Number of cached marginal tables.
  size_t size() const;

  /// Estimated bytes held by the cached tables (see EstimateMarginalBytes).
  size_t bytes() const;

  /// The byte budget; 0 means unlimited.
  size_t byte_budget() const;

  /// Sets the byte budget and immediately evicts LRU entries down to it.
  /// 0 disables eviction.
  void set_byte_budget(size_t budget);

  /// Total tables evicted over the cache's lifetime.
  uint64_t evictions() const;

  /// Drops every entry.
  void Clear();

  MarginalCache() = default;
  MarginalCache(const MarginalCache&) = delete;
  MarginalCache& operator=(const MarginalCache&) = delete;

 private:
  // (fingerprint, spec attributes) → computed table. Marginals are stored
  // behind shared_ptr so lookups can copy the table outside the lock.
  using Key = std::pair<uint64_t, std::vector<uint32_t>>;
  struct Entry {
    std::shared_ptr<const Marginal> table;
    size_t bytes = 0;
    std::list<Key>::iterator lru;  // position in lru_
  };

  // Both require mu_ held.
  void TouchLocked(Entry* entry);
  void EvictToBudgetLocked();

  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = most recently used
  size_t bytes_ = 0;
  size_t byte_budget_ = 0;  // 0: unlimited
  uint64_t evictions_ = 0;
};

/// The cache's per-table footprint estimate: the count table, the domain
/// and stride vectors, and the container overhead. Exposed so tests can
/// size budgets in units the eviction logic actually uses.
size_t EstimateMarginalBytes(const Marginal& marginal);

}  // namespace ireduct

#endif  // IREDUCT_MARGINALS_MARGINAL_CACHE_H_
