// Synthetic record release from noisy marginals (paper Conclusion: "our
// technique for generating marginals could be used as a basis for
// releasing a table of 'synthetic' records").
//
// Given the classifier-style marginal set (the class attribute's 1D
// marginal plus one {feature, class} 2D marginal per feature — see
// ClassifierSpecs), this module fits the corresponding naive-Bayes-factored
// joint
//   P(class, features) = P(class) · Π_f P(feature_f | class)
// to the (post-processed) noisy counts and samples any number of synthetic
// rows. Because the inputs are differentially private and sampling touches
// no private data, the synthetic table inherits the marginals' ε guarantee.
#ifndef IREDUCT_MARGINALS_SYNTHETIC_H_
#define IREDUCT_MARGINALS_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/dataset.h"
#include "marginals/marginal.h"

namespace ireduct {

/// Samples `rows` synthetic records over `schema` from the naive-Bayes
/// model fitted to `marginals` (laid out as produced by
/// ClassifierSpecs(schema, class_attr)). Noisy counts are clamped to a
/// small positive floor before normalization, so negative/zero noisy cells
/// are handled gracefully.
Result<Dataset> SynthesizeFromClassifierMarginals(
    const Schema& schema, size_t class_attr,
    const std::vector<Marginal>& marginals, uint64_t rows, BitGen& gen);

/// Fidelity metric for a synthetic table: the overall error (Definition 6
/// with sanity bound `delta`) of the synthetic table's marginals against
/// the original table's, over the given specs. Lower is better.
Result<double> SyntheticMarginalError(const Dataset& original,
                                      const Dataset& synthetic,
                                      std::span<const MarginalSpec> specs,
                                      double delta);

}  // namespace ireduct

#endif  // IREDUCT_MARGINALS_SYNTHETIC_H_
