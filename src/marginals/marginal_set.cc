#include "marginals/marginal_set.h"

#include "marginals/marginal_evaluator.h"

namespace ireduct {

namespace {

void EnumerateCombinations(uint32_t n, int k, uint32_t next,
                           std::vector<uint32_t>& current,
                           std::vector<MarginalSpec>& out) {
  if (static_cast<int>(current.size()) == k) {
    out.push_back(MarginalSpec{current});
    return;
  }
  for (uint32_t a = next; a < n; ++a) {
    current.push_back(a);
    EnumerateCombinations(n, k, a + 1, current, out);
    current.pop_back();
  }
}

}  // namespace

Result<std::vector<MarginalSpec>> AllKWaySpecs(const Schema& schema, int k) {
  if (k < 1 || static_cast<size_t>(k) > schema.num_attributes()) {
    return Status::InvalidArgument("k must be in [1, num_attributes]");
  }
  std::vector<MarginalSpec> specs;
  std::vector<uint32_t> current;
  EnumerateCombinations(static_cast<uint32_t>(schema.num_attributes()), k, 0,
                        current, specs);
  return specs;
}

Result<std::vector<MarginalSpec>> ClassifierSpecs(const Schema& schema,
                                                  size_t class_attr) {
  if (class_attr >= schema.num_attributes()) {
    return Status::OutOfRange("class attribute index out of range");
  }
  std::vector<MarginalSpec> specs;
  specs.push_back(MarginalSpec{{static_cast<uint32_t>(class_attr)}});
  for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
    if (a == class_attr) continue;
    specs.push_back(MarginalSpec{{a, static_cast<uint32_t>(class_attr)}});
  }
  return specs;
}

Result<std::vector<Marginal>> ComputeMarginals(
    const Dataset& dataset, std::span<const MarginalSpec> specs,
    std::span<const uint32_t> rows) {
  // One fused pass over the dataset instead of one scan per spec; output
  // is bit-identical to per-spec Marginal::Compute (see
  // marginals/marginal_evaluator.h).
  IREDUCT_ASSIGN_OR_RETURN(
      MarginalSetEvaluator evaluator,
      MarginalSetEvaluator::Create(
          dataset.schema(),
          std::vector<MarginalSpec>(specs.begin(), specs.end())));
  return evaluator.Compute(dataset, rows);
}

}  // namespace ireduct
