// Fused evaluation of marginal collections.
//
// Computing the true tables for an all-k-way task with Marginal::Compute
// costs one full dataset scan *per marginal* — 36 scans for the paper's 2D
// census task. MarginalSetEvaluator instead prepares the per-marginal
// column/stride tables once and counts every marginal in a single
// row-sharded pass over the columnar Dataset: each row's attribute codes
// are loaded once and folded into all marginals that reference them.
//
// Parallelism and determinism: with a ThreadPool the row range is split
// into one shard per worker, each shard counts into its own uint32
// accumulator block, and the blocks are merged in fixed shard order.
// Because cell counts are integers (every row contributes exactly +1 to
// one cell per marginal), integer merging is associative and the final
// double tables are bit-identical to sequential Marginal::Compute at any
// thread count — the evaluation-layer analogue of the BitGen::Fork
// substream discipline the batched iReduct rounds use.
#ifndef IREDUCT_MARGINALS_MARGINAL_EVALUATOR_H_
#define IREDUCT_MARGINALS_MARGINAL_EVALUATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "data/dataset.h"
#include "marginals/marginal.h"

namespace ireduct {

class ColumnarFile;

/// Precomputed plan for evaluating a fixed set of marginal specs over
/// datasets of one schema in a single pass.
class MarginalSetEvaluator {
 public:
  /// Validates every spec against `schema` (distinct in-range attributes,
  /// bounded cell counts — the same checks Marginal::Compute applies) and
  /// builds the fused plan. The evaluator may be reused across datasets
  /// that share the schema.
  static Result<MarginalSetEvaluator> Create(const Schema& schema,
                                             std::vector<MarginalSpec> specs);

  /// Counts every marginal over `dataset` (restricted to `rows` when
  /// non-empty) in one pass. With a non-null `pool` the pass is sharded
  /// across its workers; the result is bit-identical to per-spec
  /// Marginal::Compute regardless of `pool` and its size. The dataset must
  /// have at least as many attributes as the plan's schema, with domain
  /// sizes no smaller than planned.
  Result<std::vector<Marginal>> Compute(const Dataset& dataset,
                                        std::span<const uint32_t> rows = {},
                                        ThreadPool* pool = nullptr) const;

  /// Out-of-core pass: counts every marginal over a columnar file
  /// block-by-block without materializing the table, holding at most two
  /// blocks of decoded values (double-buffered: with a `pool`, the next
  /// block decodes asynchronously while the current one is counted, and
  /// each block's rows are sharded across the remaining workers). Only the
  /// referenced columns are ever decoded. Counts are integers, so the
  /// result is bit-identical to Compute over the materialized dataset —
  /// and to per-spec Marginal::Compute — at any thread count and any
  /// block size.
  Result<std::vector<Marginal>> ComputeStreaming(
      const ColumnarFile& file, ThreadPool* pool = nullptr) const;

  size_t num_specs() const { return plans_.size(); }
  const MarginalSpec& spec(size_t i) const { return plans_[i].spec; }
  /// Total cells across all planned marginals (the accumulator footprint).
  size_t total_cells() const { return total_cells_; }

 private:
  struct SpecPlan {
    MarginalSpec spec;
    std::vector<uint32_t> domain_sizes;  // aligned with spec.attributes
    // Fused terms: for each attribute, (index into columns_, row-major
    // stride). cell = offset + sum(stride * row_value[column]).
    std::vector<std::pair<uint32_t, size_t>> terms;
    size_t offset = 0;  // start of this marginal's block in the flat table
    size_t cells = 0;
  };

  MarginalSetEvaluator() = default;

  // Counts `rows[begin..end)` (or raw row range when `rows` is empty) into
  // `counts` (size total_cells_).
  void CountShard(const Dataset& dataset, std::span<const uint32_t> rows,
                  size_t begin, size_t end, uint32_t* counts) const;

  // Shared counting core: `cols[i]` is the code pointer for columns_[i]
  // (a full dataset column, or one decoded block in the streaming pass).
  void CountColumns(const uint16_t* const* cols, const uint32_t* row_idx,
                    size_t begin, size_t end, uint32_t* counts) const;

  std::vector<SpecPlan> plans_;
  std::vector<uint32_t> columns_;  // sorted union of referenced attributes
  size_t total_cells_ = 0;
  size_t num_schema_attributes_ = 0;
  // Largest cell count among striping-eligible plans (any arity, capped so
  // the scratch stays cache-resident); sizes the per-shard lane scratch
  // for the striped counting kernels.
  size_t max_kernel_cells_ = 0;
};

}  // namespace ireduct

#endif  // IREDUCT_MARGINALS_MARGINAL_EVALUATOR_H_
