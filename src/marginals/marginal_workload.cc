#include "marginals/marginal_workload.h"

#include <algorithm>
#include <string>
#include <utility>

namespace ireduct {

namespace {
// One tuple change moves two cells of every marginal by one each
// (Section 5.1: sensitivity of a marginal set is 2·|M|).
constexpr double kMarginalSensitivity = 2.0;
}  // namespace

Result<MarginalWorkload> MarginalWorkload::Create(
    std::vector<Marginal> marginals) {
  if (marginals.empty()) {
    return Status::InvalidArgument("need at least one marginal");
  }
  std::vector<double> answers;
  std::vector<QueryGroup> groups;
  uint32_t offset = 0;
  for (size_t i = 0; i < marginals.size(); ++i) {
    const Marginal& m = marginals[i];
    answers.insert(answers.end(), m.counts().begin(), m.counts().end());
    const uint32_t cells = static_cast<uint32_t>(m.num_cells());
    groups.push_back(QueryGroup{"M" + std::to_string(i), offset,
                                offset + cells, kMarginalSensitivity});
    offset += cells;
  }
  IREDUCT_ASSIGN_OR_RETURN(
      Workload workload, Workload::Create(std::move(answers),
                                          std::move(groups)));
  return MarginalWorkload(std::move(marginals), std::move(workload));
}

Result<std::vector<Marginal>> MarginalWorkload::ToMarginals(
    std::span<const double> answers) const {
  if (answers.size() != workload_.num_queries()) {
    return Status::InvalidArgument("answer vector size mismatch");
  }
  std::vector<Marginal> noisy;
  noisy.reserve(marginals_.size());
  size_t offset = 0;
  for (const Marginal& m : marginals_) {
    std::vector<double> counts(answers.begin() + offset,
                               answers.begin() + offset + m.num_cells());
    IREDUCT_ASSIGN_OR_RETURN(
        Marginal rebuilt,
        Marginal::FromCounts(m.spec(), m.domain_sizes(), std::move(counts)));
    noisy.push_back(std::move(rebuilt));
    offset += m.num_cells();
  }
  return noisy;
}

Result<LinearWorkload> MarginalWorkload::ToLinear(const Dataset& dataset,
                                                  size_t max_cells) const {
  // Union of attributes across all marginals, sorted.
  std::vector<uint32_t> attrs;
  for (const Marginal& m : marginals_) {
    attrs.insert(attrs.end(), m.spec().attributes.begin(),
                 m.spec().attributes.end());
  }
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  const Schema& schema = dataset.schema();
  for (uint32_t a : attrs) {
    if (a >= schema.num_attributes()) {
      return Status::OutOfRange("marginal attribute " + std::to_string(a) +
                                " not in the dataset schema");
    }
  }
  for (const Marginal& m : marginals_) {
    for (size_t k = 0; k < m.spec().attributes.size(); ++k) {
      if (m.domain_sizes()[k] !=
          schema.attribute(m.spec().attributes[k]).domain_size) {
        return Status::InvalidArgument(
            "marginal domain sizes do not match the dataset schema");
      }
    }
  }

  // Joint domain shape (row-major, first attribute varies slowest).
  std::vector<size_t> dims(attrs.size());
  size_t cells = 1;
  for (size_t k = 0; k < attrs.size(); ++k) {
    dims[k] = schema.attribute(attrs[k]).domain_size;
    if (dims[k] == 0 || cells > max_cells / dims[k]) {
      return Status::InvalidArgument(
          "joint domain of the marginal union exceeds max_cells (" +
          std::to_string(max_cells) + ")");
    }
    cells *= dims[k];
  }
  std::vector<size_t> strides(attrs.size());
  size_t stride = 1;
  for (size_t k = attrs.size(); k-- > 0;) {
    strides[k] = stride;
    stride *= dims[k];
  }

  // The joint histogram: one pass over the dataset.
  std::vector<double> histogram(cells, 0.0);
  for (size_t row = 0; row < dataset.num_rows(); ++row) {
    size_t idx = 0;
    for (size_t k = 0; k < attrs.size(); ++k) {
      idx += size_t{dataset.value(row, attrs[k])} * strides[k];
    }
    histogram[idx] += 1.0;
  }

  // One 0/1 row per marginal cell, selecting the joint cells that
  // project onto it.
  SparseMatrix::Builder builder(workload_.num_queries(), cells);
  uint32_t offset = 0;
  for (const Marginal& m : marginals_) {
    const size_t arity = m.spec().attributes.size();
    std::vector<size_t> pos(arity);  // attribute position within `attrs`
    for (size_t k = 0; k < arity; ++k) {
      pos[k] = static_cast<size_t>(
          std::lower_bound(attrs.begin(), attrs.end(),
                           m.spec().attributes[k]) -
          attrs.begin());
    }
    std::vector<size_t> mstrides(arity);
    size_t ms = 1;
    for (size_t k = arity; k-- > 0;) {
      mstrides[k] = ms;
      ms *= m.domain_sizes()[k];
    }
    for (size_t j = 0; j < cells; ++j) {
      size_t cell = 0;
      for (size_t k = 0; k < arity; ++k) {
        cell += ((j / strides[pos[k]]) % dims[pos[k]]) * mstrides[k];
      }
      builder.Add(offset + static_cast<uint32_t>(cell),
                  static_cast<uint32_t>(j), 1.0);
    }
    offset += static_cast<uint32_t>(m.num_cells());
  }
  IREDUCT_ASSIGN_OR_RETURN(SparseMatrix w, std::move(builder).Build());
  return LinearWorkload::Create(std::move(w), std::move(histogram),
                                NeighborModel::kMove);
}

}  // namespace ireduct
