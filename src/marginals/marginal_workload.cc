#include "marginals/marginal_workload.h"

namespace ireduct {

namespace {
// One tuple change moves two cells of every marginal by one each
// (Section 5.1: sensitivity of a marginal set is 2·|M|).
constexpr double kMarginalSensitivity = 2.0;
}  // namespace

Result<MarginalWorkload> MarginalWorkload::Create(
    std::vector<Marginal> marginals) {
  if (marginals.empty()) {
    return Status::InvalidArgument("need at least one marginal");
  }
  std::vector<double> answers;
  std::vector<QueryGroup> groups;
  uint32_t offset = 0;
  for (size_t i = 0; i < marginals.size(); ++i) {
    const Marginal& m = marginals[i];
    answers.insert(answers.end(), m.counts().begin(), m.counts().end());
    const uint32_t cells = static_cast<uint32_t>(m.num_cells());
    groups.push_back(QueryGroup{"M" + std::to_string(i), offset,
                                offset + cells, kMarginalSensitivity});
    offset += cells;
  }
  IREDUCT_ASSIGN_OR_RETURN(
      Workload workload, Workload::Create(std::move(answers),
                                          std::move(groups)));
  return MarginalWorkload(std::move(marginals), std::move(workload));
}

Result<std::vector<Marginal>> MarginalWorkload::ToMarginals(
    std::span<const double> answers) const {
  if (answers.size() != workload_.num_queries()) {
    return Status::InvalidArgument("answer vector size mismatch");
  }
  std::vector<Marginal> noisy;
  noisy.reserve(marginals_.size());
  size_t offset = 0;
  for (const Marginal& m : marginals_) {
    std::vector<double> counts(answers.begin() + offset,
                               answers.begin() + offset + m.num_cells());
    IREDUCT_ASSIGN_OR_RETURN(
        Marginal rebuilt,
        Marginal::FromCounts(m.spec(), m.domain_sizes(), std::move(counts)));
    noisy.push_back(std::move(rebuilt));
    offset += m.num_cells();
  }
  return noisy;
}

}  // namespace ireduct
