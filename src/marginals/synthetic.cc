#include "marginals/synthetic.h"

#include <cmath>

#include "common/logging.h"
#include "dp/workload.h"
#include "eval/metrics.h"
#include "marginals/marginal_set.h"
#include "marginals/marginal_workload.h"

namespace ireduct {

namespace {

// Clamp noisy counts into usable non-negative weights. The +1 floor
// matches the paper's classifier post-processing (y <- max{y+1, 1}).
double UsableCount(double noisy) { return std::fmax(noisy + 1.0, 1.0); }

// Categorical sampler over cumulative weights.
class Sampler {
 public:
  explicit Sampler(std::vector<double> weights) : cumulative_(weights) {
    double total = 0;
    for (double& c : cumulative_) {
      IREDUCT_CHECK(c >= 0);
      total += c;
      c = total;
    }
    IREDUCT_CHECK(total > 0);
    for (double& c : cumulative_) c /= total;
    cumulative_.back() = 1.0;
  }

  uint16_t Sample(BitGen& gen) const {
    const double u = gen.Uniform();
    size_t lo = 0, hi = cumulative_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cumulative_[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<uint16_t>(lo);
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace

Result<Dataset> SynthesizeFromClassifierMarginals(
    const Schema& schema, size_t class_attr,
    const std::vector<Marginal>& marginals, uint64_t rows, BitGen& gen) {
  if (class_attr >= schema.num_attributes()) {
    return Status::OutOfRange("class attribute index out of range");
  }
  if (marginals.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "expected the ClassifierSpecs marginal layout");
  }
  if (rows == 0) {
    return Status::InvalidArgument("row count must be positive");
  }
  const Marginal& class_marginal = marginals[0];
  if (class_marginal.spec().attributes !=
      std::vector<uint32_t>{static_cast<uint32_t>(class_attr)}) {
    return Status::InvalidArgument(
        "marginals[0] must be the 1D class marginal");
  }
  const uint32_t num_classes = schema.attribute(class_attr).domain_size;

  // Class prior.
  std::vector<double> prior(num_classes);
  for (uint32_t c = 0; c < num_classes; ++c) {
    prior[c] = UsableCount(class_marginal.count(c));
  }
  const Sampler class_sampler{std::move(prior)};

  // Per-feature, per-class conditional samplers.
  struct Feature {
    uint32_t attribute;
    std::vector<Sampler> by_class;  // one sampler per class value
  };
  std::vector<Feature> features;
  size_t next = 1;
  for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
    if (a == class_attr) continue;
    const Marginal& m = marginals[next++];
    if (m.spec().attributes !=
        std::vector<uint32_t>{a, static_cast<uint32_t>(class_attr)}) {
      return Status::InvalidArgument(
          "feature marginals must be {feature, class} in attribute order");
    }
    const uint32_t domain = schema.attribute(a).domain_size;
    Feature feature;
    feature.attribute = a;
    for (uint32_t c = 0; c < num_classes; ++c) {
      std::vector<double> weights(domain);
      for (uint32_t v = 0; v < domain; ++v) {
        weights[v] =
            UsableCount(m.count(static_cast<size_t>(v) * num_classes + c));
      }
      feature.by_class.emplace_back(std::move(weights));
    }
    features.push_back(std::move(feature));
  }

  Dataset synthetic(schema);
  synthetic.Reserve(rows);
  std::vector<uint16_t> row(schema.num_attributes());
  for (uint64_t r = 0; r < rows; ++r) {
    const uint16_t cls = class_sampler.Sample(gen);
    row[class_attr] = cls;
    for (const Feature& f : features) {
      row[f.attribute] = f.by_class[cls].Sample(gen);
    }
    IREDUCT_RETURN_NOT_OK(synthetic.AppendRow(row));
  }
  return synthetic;
}

Result<double> SyntheticMarginalError(const Dataset& original,
                                      const Dataset& synthetic,
                                      std::span<const MarginalSpec> specs,
                                      double delta) {
  IREDUCT_ASSIGN_OR_RETURN(std::vector<Marginal> truth,
                           ComputeMarginals(original, specs));
  IREDUCT_ASSIGN_OR_RETURN(std::vector<Marginal> synth,
                           ComputeMarginals(synthetic, specs));
  // Rescale the synthetic counts to the original cardinality so the error
  // measures distribution shape, not table size.
  const double scale = static_cast<double>(original.num_rows()) /
                       static_cast<double>(synthetic.num_rows());
  IREDUCT_ASSIGN_OR_RETURN(MarginalWorkload workload,
                           MarginalWorkload::Create(std::move(truth)));
  std::vector<double> answers;
  for (const Marginal& m : synth) {
    for (double c : m.counts()) answers.push_back(c * scale);
  }
  return OverallError(workload.workload(), answers, delta);
}

}  // namespace ireduct
