#include "eval/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace ireduct {

TablePrinter::TablePrinter(std::vector<std::string> header) {
  IREDUCT_CHECK(!header.empty());
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  IREDUCT_CHECK(row.size() == rows_[0].size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Cell(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << value;
  return os.str();
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << rows_[r][c];
    }
    os << '\n';
    if (r == 0) {
      for (size_t c = 0; c < widths.size(); ++c) {
        os << std::string(widths[c], '-') << "  ";
      }
      os << '\n';
    }
  }
  os.flush();
}

}  // namespace ireduct
