#include "eval/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/numeric.h"

namespace ireduct {

SampleSummary Summarize(std::span<const double> sample) {
  IREDUCT_CHECK(!sample.empty());
  SampleSummary s;
  s.count = sample.size();
  KahanSum sum;
  s.min = sample[0];
  s.max = sample[0];
  for (double x : sample) {
    sum.Add(x);
    s.min = std::fmin(s.min, x);
    s.max = std::fmax(s.max, x);
  }
  s.mean = sum.value() / s.count;
  KahanSum sq, abs_dev;
  for (double x : sample) {
    const double d = x - s.mean;
    sq.Add(d * d);
    abs_dev.Add(std::fabs(d));
  }
  s.variance = s.count > 1 ? sq.value() / (s.count - 1) : 0;
  s.mean_abs_deviation = abs_dev.value() / s.count;
  return s;
}

double KsStatistic(std::span<const double> sample,
                   const std::function<double(double)>& cdf) {
  IREDUCT_CHECK(!sample.empty());
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double worst = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    const double lo = i / n;
    const double hi = (i + 1) / n;
    worst = std::fmax(worst, std::fmax(std::fabs(f - lo), std::fabs(f - hi)));
  }
  return worst;
}

double LaplaceCdf(double x, double mu, double b) {
  const double z = (x - mu) / b;
  return z < 0 ? 0.5 * std::exp(z) : 1.0 - 0.5 * std::exp(-z);
}

double MaxLogFrequencyRatio(const std::function<double()>& mechanism_a,
                            const std::function<double()>& mechanism_b,
                            int trials, double lo, double hi, int bins,
                            int min_count) {
  IREDUCT_CHECK(bins > 0 && trials > 0 && hi > lo);
  std::vector<int> count_a(bins, 0), count_b(bins, 0);
  const double width = (hi - lo) / bins;
  auto bucket = [&](double x) -> int {
    if (x < lo || x >= hi) return -1;
    return static_cast<int>((x - lo) / width);
  };
  for (int t = 0; t < trials; ++t) {
    if (int i = bucket(mechanism_a()); i >= 0) ++count_a[i];
    if (int i = bucket(mechanism_b()); i >= 0) ++count_b[i];
  }
  double worst = 0;
  for (int i = 0; i < bins; ++i) {
    if (count_a[i] >= min_count && count_b[i] >= min_count) {
      worst = std::fmax(worst, std::fabs(std::log(
                                   static_cast<double>(count_a[i]) /
                                   static_cast<double>(count_b[i]))));
    }
  }
  return worst;
}

}  // namespace ireduct
