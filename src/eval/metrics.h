// Utility metrics from the paper: relative error with a sanity bound
// (Equation 1) and the overall error of grouped answers (Definition 6).
#ifndef IREDUCT_EVAL_METRICS_H_
#define IREDUCT_EVAL_METRICS_H_

#include <span>

#include "dp/workload.h"
#include "eval/sanity_bounds.h"

namespace ireduct {

/// Relative error of a published value against the true value:
/// |published - truth| / max{truth, delta} (Equation 1). Requires delta > 0.
double RelativeError(double published, double truth, double delta);

/// Overall error (Definition 6): the mean over groups of the mean relative
/// error within each group,
///   1/|M| Σ_g 1/|G_g| Σ_{j∈g} |y_j - q_j(T)| / max{δ, q_j(T)}.
double OverallError(const Workload& workload,
                    std::span<const double> published, double delta);

/// Overall error with per-query sanity bounds (the Section 2.1 extension).
/// When `bounds` is per-query it must carry one entry per workload query.
double OverallError(const Workload& workload,
                    std::span<const double> published,
                    const SanityBounds& bounds);

/// Maximum relative error over all queries — the worst-case counterpart the
/// Proportional strategy of Section 3.1 targets.
double MaxRelativeError(const Workload& workload,
                        std::span<const double> published, double delta);

/// Mean absolute error over all queries (the objective prior work
/// optimizes; reported in ablations for contrast).
double MeanAbsoluteError(const Workload& workload,
                         std::span<const double> published);

}  // namespace ireduct

#endif  // IREDUCT_EVAL_METRICS_H_
