#include "eval/report.h"

#include <cmath>
#include <fstream>

#include "dp/confidence.h"
#include "eval/metrics.h"

namespace ireduct {

Status WriteMarginalCsv(const Marginal& marginal, const Schema& schema,
                        std::ostream& out) {
  for (size_t i = 0; i < marginal.spec().attributes.size(); ++i) {
    const uint32_t attr = marginal.spec().attributes[i];
    if (attr >= schema.num_attributes()) {
      return Status::OutOfRange("marginal attribute outside schema");
    }
    out << schema.attribute(attr).name << ',';
  }
  out << "count\n";
  for (size_t cell = 0; cell < marginal.num_cells(); ++cell) {
    for (uint16_t coord : marginal.CellCoordinates(cell)) {
      out << coord << ',';
    }
    out << marginal.count(cell) << '\n';
  }
  if (!out) return Status::IoError("marginal CSV write failed");
  return Status::OK();
}

Status WriteMarginalsCsv(const std::vector<Marginal>& marginals,
                         const Schema& schema, const std::string& directory,
                         const std::string& prefix) {
  for (size_t i = 0; i < marginals.size(); ++i) {
    const std::string path =
        directory + "/" + prefix + "_" + std::to_string(i) + ".csv";
    std::ofstream out(path);
    if (!out) return Status::IoError("cannot open '" + path + "'");
    IREDUCT_RETURN_NOT_OK(WriteMarginalCsv(marginals[i], schema, out));
  }
  return Status::OK();
}

Status WriteAnswersCsv(const Workload& workload,
                       const MechanismOutput& output, double level,
                       std::ostream& out) {
  IREDUCT_ASSIGN_OR_RETURN(std::vector<ConfidenceInterval> intervals,
                           ConfidenceIntervals(workload, output, level));
  out << "query_index,group,answer,noise_scale,ci_lo,ci_hi\n";
  for (size_t i = 0; i < output.answers.size(); ++i) {
    const size_t g = workload.group_of(i);
    out << i << ',' << workload.group(g).name << ',' << output.answers[i]
        << ',' << output.group_scales[g] << ',' << intervals[i].lo << ','
        << intervals[i].hi << '\n';
  }
  if (!out) return Status::IoError("answers CSV write failed");
  return Status::OK();
}

ComparisonRow Evaluate(const std::string& name, const Workload& workload,
                       const MechanismOutput& output, double delta) {
  ComparisonRow row;
  row.mechanism = name;
  row.overall_error = OverallError(workload, output.answers, delta);
  row.max_relative_error =
      MaxRelativeError(workload, output.answers, delta);
  row.mean_absolute_error = MeanAbsoluteError(workload, output.answers);
  row.epsilon_spent = output.epsilon_spent;
  return row;
}

Status WriteComparisonCsv(const std::vector<ComparisonRow>& rows,
                          std::ostream& out) {
  out << "mechanism,overall_error,max_relative_error,mean_absolute_error,"
         "epsilon_spent\n";
  for (const ComparisonRow& row : rows) {
    out << row.mechanism << ',' << row.overall_error << ','
        << row.max_relative_error << ',' << row.mean_absolute_error << ','
        << row.epsilon_spent << '\n';
  }
  if (!out) return Status::IoError("comparison CSV write failed");
  return Status::OK();
}

}  // namespace ireduct
