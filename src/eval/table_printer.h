// Fixed-width table printing for the benchmark harnesses, so each figure
// bench emits the same rows/series the paper plots.
#ifndef IREDUCT_EVAL_TABLE_PRINTER_H_
#define IREDUCT_EVAL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace ireduct {

/// Accumulates rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one row; must have as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Formats a double with `precision` significant decimal digits.
  static std::string Cell(double value, int precision = 4);

  /// Writes the table (header, separator, rows) to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;  // rows_[0] is the header
};

}  // namespace ireduct

#endif  // IREDUCT_EVAL_TABLE_PRINTER_H_
