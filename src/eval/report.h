// Export of published results for downstream consumption: marginals as
// CSV (cell coordinates + counts), mechanism outputs with confidence
// intervals, and multi-mechanism comparison tables.
#ifndef IREDUCT_EVAL_REPORT_H_
#define IREDUCT_EVAL_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "algorithms/mechanism.h"
#include "common/result.h"
#include "data/schema.h"
#include "dp/workload.h"
#include "marginals/marginal.h"

namespace ireduct {

/// Writes one marginal as CSV: a header naming its attributes (via
/// `schema`) plus a `count` column, then one row per cell.
Status WriteMarginalCsv(const Marginal& marginal, const Schema& schema,
                        std::ostream& out);

/// Convenience: writes every marginal to `directory/<prefix>_<i>.csv`.
Status WriteMarginalsCsv(const std::vector<Marginal>& marginals,
                         const Schema& schema, const std::string& directory,
                         const std::string& prefix);

/// Writes a mechanism's published answers as CSV with columns
/// query_index, group, answer, noise_scale, ci_lo, ci_hi (at the given
/// confidence level).
Status WriteAnswersCsv(const Workload& workload,
                       const MechanismOutput& output, double level,
                       std::ostream& out);

/// One row of a mechanism-comparison report.
struct ComparisonRow {
  std::string mechanism;
  double overall_error = 0;
  double max_relative_error = 0;
  double mean_absolute_error = 0;
  double epsilon_spent = 0;
};

/// Evaluates a published output into a ComparisonRow.
ComparisonRow Evaluate(const std::string& name, const Workload& workload,
                       const MechanismOutput& output, double delta);

/// Writes comparison rows as CSV.
Status WriteComparisonCsv(const std::vector<ComparisonRow>& rows,
                          std::ostream& out);

}  // namespace ireduct

#endif  // IREDUCT_EVAL_REPORT_H_
