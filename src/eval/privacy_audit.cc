#include "eval/privacy_audit.h"

#include <cmath>

#include "eval/stats.h"

namespace ireduct {

Result<AuditReport> AuditMechanismPair(
    const std::function<double()>& mechanism_a,
    const std::function<double()>& mechanism_b,
    const AuditOptions& options) {
  if (options.trials <= 0 || options.bins <= 0 ||
      !(options.hi > options.lo)) {
    return Status::InvalidArgument("invalid audit options");
  }
  AuditReport report;
  report.trials = options.trials;
  report.epsilon_lower_bound =
      MaxLogFrequencyRatio(mechanism_a, mechanism_b, options.trials,
                           options.lo, options.hi, options.bins,
                           options.min_count);
  return report;
}

}  // namespace ireduct
