#include "eval/run_report.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "obs/json.h"

namespace ireduct {

namespace {

// Nearest-rank percentile over already-sorted values; deterministic for
// equal inputs (no interpolation).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

std::string JsonToken(double v) {
  if (!std::isfinite(v)) return '"' + obs::FormatDouble(v) + '"';
  return obs::FormatDouble(v);
}

}  // namespace

QueryErrorStats ComputeQueryErrorStats(const Workload& workload,
                                       std::span<const double> published,
                                       double delta) {
  QueryErrorStats stats;
  stats.queries = workload.num_queries();
  stats.overall_error = OverallError(workload, published, delta);
  stats.max_relative_error = MaxRelativeError(workload, published, delta);
  stats.mean_absolute_error = MeanAbsoluteError(workload, published);
  std::vector<double> rel;
  rel.reserve(workload.num_queries());
  double total = 0;
  for (uint32_t i = 0; i < workload.num_queries(); ++i) {
    const double e =
        RelativeError(published[i], workload.true_answer(i), delta);
    rel.push_back(e);
    total += e;
  }
  if (!rel.empty()) {
    stats.mean_relative_error = total / static_cast<double>(rel.size());
    std::sort(rel.begin(), rel.end());
    stats.p50_relative_error = Percentile(rel, 50);
    stats.p90_relative_error = Percentile(rel, 90);
    stats.p99_relative_error = Percentile(rel, 99);
  }
  return stats;
}

void RunReport::SetRunField(std::string_view key, std::string_view value) {
  run_fields_.emplace_back(std::string(key),
                           '"' + obs::EscapeJson(value) + '"');
}

void RunReport::SetRunField(std::string_view key, double value) {
  run_fields_.emplace_back(std::string(key), JsonToken(value));
}

void RunReport::SetRunField(std::string_view key, uint64_t value) {
  run_fields_.emplace_back(std::string(key), std::to_string(value));
}

void RunReport::SetErrors(const Workload& workload,
                          std::span<const double> published, double delta) {
  errors_ = ComputeQueryErrorStats(workload, published, delta);
  group_errors_.clear();
  group_errors_.reserve(workload.num_groups());
  for (size_t g = 0; g < workload.num_groups(); ++g) {
    const QueryGroup& group = workload.group(g);
    GroupErrorStats gs;
    gs.name = group.name;
    gs.queries = group.end - group.begin;
    double total = 0;
    for (uint32_t i = group.begin; i < group.end; ++i) {
      const double e =
          RelativeError(published[i], workload.true_answer(i), delta);
      total += e;
      gs.max_relative_error = std::max(gs.max_relative_error, e);
    }
    if (gs.queries > 0) {
      gs.mean_relative_error = total / static_cast<double>(gs.queries);
    }
    group_errors_.push_back(std::move(gs));
  }
}

void RunReport::AttachLedger(const PrivacyAccountant& accountant) {
  ledger_json_ = accountant.ExportLedgerJson();
  ledger_budget_ = accountant.budget();
  ledger_spent_ = accountant.spent();
  ledger_charges_ = accountant.ledger().size();
}

void RunReport::AttachMetrics(const obs::MetricsRegistry& registry) {
  const obs::MetricsSnapshot snapshot = registry.Snapshot();
  metrics_count_ = snapshot.counters.size() + snapshot.gauges.size() +
                   snapshot.histograms.size();
  metrics_json_ = registry.SnapshotJson();
}

void RunReport::AttachEvents(const obs::EventLog& events) {
  events_summary_json_ = events.SummaryJson();
  event_lines_ = events.SnapshotLines();
  events_emitted_ = events.total_emitted();
  events_dropped_ = events.total_dropped();
}

std::string RunReport::ToJson() const {
  std::string out;
  obs::JsonWriter json(&out);
  json.BeginObject();
  json.KV("report_version", uint64_t{1});

  json.Key("run");
  json.BeginObject();
  json.KV("name", run_name_);
  for (const auto& [key, token] : run_fields_) {
    json.Key(key);
    json.RawValue(token);
  }
  json.EndObject();

  if (errors_.has_value()) {
    json.Key("errors");
    json.BeginObject();
    json.KV("queries", errors_->queries);
    json.KV("overall_error", errors_->overall_error);
    json.KV("mean_relative_error", errors_->mean_relative_error);
    json.KV("max_relative_error", errors_->max_relative_error);
    json.KV("p50_relative_error", errors_->p50_relative_error);
    json.KV("p90_relative_error", errors_->p90_relative_error);
    json.KV("p99_relative_error", errors_->p99_relative_error);
    json.KV("mean_absolute_error", errors_->mean_absolute_error);
    json.Key("per_group");
    json.BeginArray();
    for (const GroupErrorStats& group : group_errors_) {
      json.BeginObject();
      json.KV("group", group.name);
      json.KV("queries", group.queries);
      json.KV("mean_relative_error", group.mean_relative_error);
      json.KV("max_relative_error", group.max_relative_error);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }

  if (ledger_json_.has_value()) {
    json.Key("ledger");
    json.RawValue(*ledger_json_);
  }

  if (metrics_json_.has_value()) {
    json.Key("metrics");
    json.RawValue(*metrics_json_);
  }

  if (events_summary_json_.has_value()) {
    json.Key("events");
    json.BeginObject();
    json.Key("summary");
    json.RawValue(*events_summary_json_);
    json.Key("stream");
    json.BeginArray();
    for (const std::string& line : event_lines_) {
      json.RawValue(line);
    }
    json.EndArray();
    json.EndObject();
  }

  json.EndObject();
  return out;
}

void RunReport::PrintTable(std::ostream& os) const {
  TablePrinter table({"section", "field", "value"});
  table.AddRow({"run", "name", run_name_});
  for (const auto& [key, token] : run_fields_) {
    // Tokens are JSON; strings carry quotes — strip them for the table.
    std::string value = token;
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    }
    table.AddRow({"run", key, value});
  }
  if (errors_.has_value()) {
    table.AddRow({"errors", "queries", std::to_string(errors_->queries)});
    table.AddRow(
        {"errors", "overall", TablePrinter::Cell(errors_->overall_error)});
    table.AddRow({"errors", "mean_rel",
                  TablePrinter::Cell(errors_->mean_relative_error)});
    table.AddRow({"errors", "max_rel",
                  TablePrinter::Cell(errors_->max_relative_error)});
    table.AddRow({"errors", "p50_rel",
                  TablePrinter::Cell(errors_->p50_relative_error)});
    table.AddRow({"errors", "p90_rel",
                  TablePrinter::Cell(errors_->p90_relative_error)});
    table.AddRow({"errors", "p99_rel",
                  TablePrinter::Cell(errors_->p99_relative_error)});
    table.AddRow({"errors", "mean_abs",
                  TablePrinter::Cell(errors_->mean_absolute_error)});
  }
  if (ledger_json_.has_value()) {
    table.AddRow({"ledger", "budget", TablePrinter::Cell(ledger_budget_)});
    table.AddRow({"ledger", "spent", TablePrinter::Cell(ledger_spent_)});
    table.AddRow(
        {"ledger", "remaining",
         TablePrinter::Cell(ledger_budget_ - ledger_spent_)});
    table.AddRow({"ledger", "charges", std::to_string(ledger_charges_)});
  }
  if (metrics_json_.has_value()) {
    table.AddRow({"metrics", "registered", std::to_string(metrics_count_)});
  }
  if (events_summary_json_.has_value()) {
    table.AddRow({"events", "emitted", std::to_string(events_emitted_)});
    table.AddRow({"events", "dropped", std::to_string(events_dropped_)});
    table.AddRow(
        {"events", "buffered", std::to_string(event_lines_.size())});
  }
  table.Print(os);
}

Status RunReport::WriteFile(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::IoError("opening run report '" + path + "'");
  }
  file << ToJson() << '\n';
  if (!file.flush()) {
    return Status::IoError("writing run report '" + path + "'");
  }
  return Status::OK();
}

}  // namespace ireduct
