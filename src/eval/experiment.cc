#include "eval/experiment.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace ireduct {

TrialAggregate RunTrials(int trials, uint64_t base_seed,
                         const std::function<double(uint64_t)>& trial,
                         const TrialOptions& options) {
  IREDUCT_CHECK(trials >= 1);
  // Well-spread per-trial seeds (golden-ratio increments), derived the
  // same way on the sequential and parallel paths.
  const auto seed_for = [base_seed](int t) {
    return base_seed + 0x9e3779b97f4a7c15ULL * (t + 1);
  };
  int num_threads =
      options.num_threads > 0 ? options.num_threads : EnvThreads();
  if (num_threads > trials) num_threads = trials;

  std::vector<double> values(trials);
  if (num_threads <= 1) {
    for (int t = 0; t < trials; ++t) values[t] = trial(seed_for(t));
  } else {
    // Trials land in `values` at their seed index, so the summary below
    // sees the sequential ordering no matter how the pool schedules them.
    IREDUCT_METRIC_COUNT("eval.parallel_trial_batches", 1);
    ThreadPool pool(num_threads);
    for (int t = 0; t < trials; ++t) {
      pool.Submit([&values, &trial, &seed_for, t] {
        values[t] = trial(seed_for(t));
      });
    }
    pool.Wait();
  }
  IREDUCT_METRIC_COUNT("eval.trials_run", trials);
  const SampleSummary s = Summarize(values);
  return TrialAggregate{s.mean, std::sqrt(s.variance), trials};
}

}  // namespace ireduct
