#include "eval/experiment.h"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/logging.h"

namespace ireduct {

TrialAggregate RunTrials(int trials, uint64_t base_seed,
                         const std::function<double(uint64_t)>& trial) {
  IREDUCT_CHECK(trials >= 1);
  std::vector<double> values;
  values.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    // Well-spread per-trial seeds (golden-ratio increments).
    values.push_back(trial(base_seed + 0x9e3779b97f4a7c15ULL * (t + 1)));
  }
  const SampleSummary s = Summarize(values);
  return TrialAggregate{s.mean, std::sqrt(s.variance), trials};
}

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed <= 0) return fallback;
  return static_cast<int64_t>(parsed);
}

}  // namespace ireduct
