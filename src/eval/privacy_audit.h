// Black-box empirical privacy auditing.
//
// Given two *neighboring* inputs and a randomized mechanism, repeatedly
// runs the mechanism on both, histograms a scalar projection of the
// output, and reports the largest observed log frequency ratio. For an
// ε-differentially private mechanism this converges (from below) to at
// most ε; a value materially above the claimed ε is a counterexample.
//
// This is a lower-bound probe, not a verifier: mechanisms whose leaks hide
// in far tails (like the paper's Proportional strategy, whose Example 1
// violation needs outputs ~70 noise scales out) can pass an empirical
// audit at any realistic sample size.
#ifndef IREDUCT_EVAL_PRIVACY_AUDIT_H_
#define IREDUCT_EVAL_PRIVACY_AUDIT_H_

#include <functional>

#include "common/result.h"

namespace ireduct {

struct AuditOptions {
  /// Mechanism runs per side.
  int trials = 200'000;
  /// Histogram buckets over [lo, hi]; outputs outside are ignored.
  int bins = 40;
  double lo = 0;
  double hi = 1;
  /// Buckets with fewer observations on either side are skipped (their
  /// ratios are sampling noise).
  int min_count = 100;
};

struct AuditReport {
  /// Largest observed |log ratio| over well-populated buckets — an
  /// empirical lower bound on the mechanism's true ε.
  double epsilon_lower_bound = 0;
  int trials = 0;
};

/// Audits `mechanism_a` vs `mechanism_b`, which must be the same mechanism
/// closed over two neighboring inputs, each call returning one scalar
/// output sample.
Result<AuditReport> AuditMechanismPair(
    const std::function<double()>& mechanism_a,
    const std::function<double()>& mechanism_b, const AuditOptions& options);

}  // namespace ireduct

#endif  // IREDUCT_EVAL_PRIVACY_AUDIT_H_
