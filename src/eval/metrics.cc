#include "eval/metrics.h"

#include <cmath>

#include "common/logging.h"
#include "common/numeric.h"

namespace ireduct {

double RelativeError(double published, double truth, double delta) {
  IREDUCT_DCHECK(delta > 0);
  return std::fabs(published - truth) / std::fmax(truth, delta);
}

double OverallError(const Workload& workload,
                    std::span<const double> published, double delta) {
  IREDUCT_DCHECK(published.size() == workload.num_queries());
  KahanSum group_mean_sum;
  for (const QueryGroup& g : workload.groups()) {
    KahanSum in_group;
    for (uint32_t i = g.begin; i < g.end; ++i) {
      in_group.Add(
          RelativeError(published[i], workload.true_answer(i), delta));
    }
    group_mean_sum.Add(in_group.value() / g.size());
  }
  return group_mean_sum.value() / workload.num_groups();
}

double OverallError(const Workload& workload,
                    std::span<const double> published,
                    const SanityBounds& bounds) {
  IREDUCT_DCHECK(published.size() == workload.num_queries());
  IREDUCT_DCHECK(bounds.is_uniform() ||
                 bounds.size() == workload.num_queries());
  KahanSum group_mean_sum;
  for (const QueryGroup& g : workload.groups()) {
    KahanSum in_group;
    for (uint32_t i = g.begin; i < g.end; ++i) {
      in_group.Add(RelativeError(published[i], workload.true_answer(i),
                                 bounds.at(i)));
    }
    group_mean_sum.Add(in_group.value() / g.size());
  }
  return group_mean_sum.value() / workload.num_groups();
}

double MaxRelativeError(const Workload& workload,
                        std::span<const double> published, double delta) {
  IREDUCT_DCHECK(published.size() == workload.num_queries());
  double worst = 0;
  for (size_t i = 0; i < published.size(); ++i) {
    worst = std::fmax(
        worst, RelativeError(published[i], workload.true_answer(i), delta));
  }
  return worst;
}

double MeanAbsoluteError(const Workload& workload,
                         std::span<const double> published) {
  IREDUCT_DCHECK(published.size() == workload.num_queries());
  KahanSum acc;
  for (size_t i = 0; i < published.size(); ++i) {
    acc.Add(std::fabs(published[i] - workload.true_answer(i)));
  }
  return acc.value() / workload.num_queries();
}

}  // namespace ireduct
