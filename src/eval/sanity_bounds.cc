#include "eval/sanity_bounds.h"

#include <cmath>

namespace ireduct {

Result<SanityBounds> SanityBounds::Uniform(double delta) {
  if (!(delta > 0) || !std::isfinite(delta)) {
    return Status::InvalidArgument("sanity bound must be positive finite");
  }
  return SanityBounds(delta);
}

Result<SanityBounds> SanityBounds::PerQuery(std::vector<double> deltas) {
  if (deltas.empty()) {
    return Status::InvalidArgument("need at least one sanity bound");
  }
  for (double d : deltas) {
    if (!(d > 0) || !std::isfinite(d)) {
      return Status::InvalidArgument(
          "every sanity bound must be positive finite");
    }
  }
  return SanityBounds(std::move(deltas));
}

}  // namespace ireduct
