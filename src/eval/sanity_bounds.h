// Per-query sanity bounds.
//
// Section 2.1 defines relative error with one sanity bound δ "for ease of
// exposition ... but our techniques can be easily extended to the case
// when the sanity bound varies from query to query." This type carries
// either form; metrics and scale-allocation routines accept it wherever a
// scalar δ appears.
#ifndef IREDUCT_EVAL_SANITY_BOUNDS_H_
#define IREDUCT_EVAL_SANITY_BOUNDS_H_

#include <vector>

#include "common/result.h"

namespace ireduct {

/// A uniform or per-query sanity bound δ (Equation 1's denominator floor).
class SanityBounds {
 public:
  /// The same positive bound for every query.
  static Result<SanityBounds> Uniform(double delta);

  /// One positive bound per query.
  static Result<SanityBounds> PerQuery(std::vector<double> deltas);

  /// Bound for query `i`.
  double at(size_t i) const {
    return per_query_.empty() ? uniform_ : per_query_[i];
  }

  bool is_uniform() const { return per_query_.empty(); }

  /// Number of per-query entries (0 when uniform).
  size_t size() const { return per_query_.size(); }

 private:
  explicit SanityBounds(double uniform) : uniform_(uniform) {}
  explicit SanityBounds(std::vector<double> per_query)
      : per_query_(std::move(per_query)) {}

  double uniform_ = 1.0;
  std::vector<double> per_query_;
};

}  // namespace ireduct

#endif  // IREDUCT_EVAL_SANITY_BOUNDS_H_
