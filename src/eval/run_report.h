// Unified run-report artifact: one JSON document (plus a human-readable
// table) merging everything a finished run knows about itself — identifying
// run fields, per-query relative-error statistics (eval/metrics), the
// privacy accountant's ε ledger, the full metrics snapshot, and the
// structured event stream with its summary.
//
// The report is assembled by the edge that owns the run (ireduct_tool,
// bench harnesses): sections are attached independently and only attached
// sections are serialized, so a bench without a workload release still
// emits a valid report. Attaching the event stream *copies* the buffered
// lines — it never drains the log — so a later (possibly failing) drain to
// --events-out cannot corrupt a report snapshot taken before it.
//
// Serialization is deterministic for a fixed run: field order is fixed,
// doubles render shortest round-trip, and the only wall-clock content is
// whatever the caller opted into upstream (EventLog::set_wall_clock).
#ifndef IREDUCT_EVAL_RUN_REPORT_H_
#define IREDUCT_EVAL_RUN_REPORT_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dp/privacy_accountant.h"
#include "dp/workload.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace ireduct {

/// Deterministic per-query accuracy statistics for a release. Percentiles
/// are nearest-rank over the sorted per-query relative errors, so equal
/// inputs give bit-equal outputs.
struct QueryErrorStats {
  uint64_t queries = 0;
  double overall_error = 0;  // Definition 6 (mean of per-group means)
  double mean_relative_error = 0;
  double max_relative_error = 0;
  double p50_relative_error = 0;
  double p90_relative_error = 0;
  double p99_relative_error = 0;
  double mean_absolute_error = 0;
};

QueryErrorStats ComputeQueryErrorStats(const Workload& workload,
                                       std::span<const double> published,
                                       double delta);

/// Collects a run's telemetry sections and serializes them as one report.
class RunReport {
 public:
  explicit RunReport(std::string run_name) : run_name_(std::move(run_name)) {}

  /// Adds an identifying field to the "run" section (mechanism, rows,
  /// seed, ...). Fields serialize in insertion order after "name".
  void SetRunField(std::string_view key, std::string_view value);
  void SetRunField(std::string_view key, double value);
  void SetRunField(std::string_view key, uint64_t value);

  /// Computes and attaches per-query and per-group relative-error stats
  /// for a released answer vector.
  void SetErrors(const Workload& workload, std::span<const double> published,
                 double delta);

  /// Attaches the accountant's ε ledger (budget, spent, every charge).
  void AttachLedger(const PrivacyAccountant& accountant);

  /// Attaches a snapshot of `registry` (defaults to the global one).
  void AttachMetrics(
      const obs::MetricsRegistry& registry = obs::MetricsRegistry::Global());

  /// Attaches the event stream: summary plus a copy of the buffered lines.
  /// Never drains `events`.
  void AttachEvents(const obs::EventLog& events);

  /// The full report document: {"report_version":1,"run":{...},...}.
  std::string ToJson() const;

  /// Human-readable section/field/value table via eval/table_printer.
  void PrintTable(std::ostream& os) const;

  /// Writes ToJson() plus a trailing newline to `path` (truncating).
  Status WriteFile(const std::string& path) const;

 private:
  struct GroupErrorStats {
    std::string name;
    uint64_t queries = 0;
    double mean_relative_error = 0;
    double max_relative_error = 0;
  };

  std::string run_name_;
  // Values are pre-serialized JSON tokens, EventField-style.
  std::vector<std::pair<std::string, std::string>> run_fields_;
  std::optional<QueryErrorStats> errors_;
  std::vector<GroupErrorStats> group_errors_;
  std::optional<std::string> ledger_json_;
  double ledger_budget_ = 0;
  double ledger_spent_ = 0;
  uint64_t ledger_charges_ = 0;
  std::optional<std::string> metrics_json_;
  uint64_t metrics_count_ = 0;
  std::optional<std::string> events_summary_json_;
  std::vector<std::string> event_lines_;
  uint64_t events_emitted_ = 0;
  uint64_t events_dropped_ = 0;
};

}  // namespace ireduct

#endif  // IREDUCT_EVAL_RUN_REPORT_H_
