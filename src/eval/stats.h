// Statistical utilities used by the test suite and the benchmark harnesses:
// summary statistics, a Kolmogorov–Smirnov goodness-of-fit statistic, and
// an empirical differential-privacy ratio probe.
#ifndef IREDUCT_EVAL_STATS_H_
#define IREDUCT_EVAL_STATS_H_

#include <functional>
#include <span>
#include <vector>

namespace ireduct {

/// Summary statistics of a sample.
struct SampleSummary {
  double mean = 0;
  double variance = 0;          // unbiased (n-1)
  double mean_abs_deviation = 0;  // around the mean
  double min = 0;
  double max = 0;
  size_t count = 0;
};

/// Computes summary statistics; requires a non-empty sample.
SampleSummary Summarize(std::span<const double> sample);

/// Kolmogorov–Smirnov statistic sup_x |F_n(x) - F(x)| of `sample` against
/// the continuous CDF `cdf`. The sample is copied and sorted internally.
double KsStatistic(std::span<const double> sample,
                   const std::function<double(double)>& cdf);

/// CDF of the Laplace distribution with location mu and scale b.
double LaplaceCdf(double x, double mu, double b);

/// Empirical privacy probe: draws `trials` outputs of `mechanism` under two
/// adjacent inputs (the callbacks close over them), histograms both into
/// `bins` equal-width buckets over [lo, hi], and returns the maximum
/// log-ratio of bucket frequencies among buckets where both sides have at
/// least `min_count` observations. For an ε-DP mechanism this converges to
/// at most ε (up to sampling noise).
double MaxLogFrequencyRatio(const std::function<double()>& mechanism_a,
                            const std::function<double()>& mechanism_b,
                            int trials, double lo, double hi, int bins,
                            int min_count = 20);

}  // namespace ireduct

#endif  // IREDUCT_EVAL_STATS_H_
