// Repeated-trial experiment runner. The paper reports the mean overall
// error over 10 runs of each algorithm per configuration (Section 6.1);
// this helper runs a seeded trial function and aggregates — sequentially
// or on a thread pool, with bit-identical aggregates either way.
#ifndef IREDUCT_EVAL_EXPERIMENT_H_
#define IREDUCT_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/env.h"  // EnvInt64 moved here; kept included for callers
#include "eval/stats.h"

namespace ireduct {

/// Aggregate of a repeated measurement.
struct TrialAggregate {
  double mean = 0;
  double stddev = 0;
  int trials = 0;
};

/// Execution options for RunTrials.
struct TrialOptions {
  /// Worker threads for running trials concurrently. 0 (the default)
  /// reads the IREDUCT_THREADS environment knob (fallback 1); 1 runs
  /// trials sequentially on the caller's thread.
  ///
  /// Per-trial seeds are derived identically on every path and each
  /// trial's measurement is stored at its seed index before aggregation,
  /// so mean/stddev are bit-identical at any thread count. With more
  /// than one thread the trial function must be safe to call
  /// concurrently (trials seeded through their own BitGen and reading
  /// shared state const-only qualify).
  int num_threads = 0;
};

/// Runs `trial(seed)` for `trials` distinct seeds derived from `base_seed`
/// and summarizes the returned measurements. Requires trials >= 1.
TrialAggregate RunTrials(int trials, uint64_t base_seed,
                         const std::function<double(uint64_t)>& trial,
                         const TrialOptions& options = {});

}  // namespace ireduct

#endif  // IREDUCT_EVAL_EXPERIMENT_H_
