// Repeated-trial experiment runner. The paper reports the mean overall
// error over 10 runs of each algorithm per configuration (Section 6.1);
// this helper runs a seeded trial function and aggregates.
#ifndef IREDUCT_EVAL_EXPERIMENT_H_
#define IREDUCT_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "eval/stats.h"

namespace ireduct {

/// Aggregate of a repeated measurement.
struct TrialAggregate {
  double mean = 0;
  double stddev = 0;
  int trials = 0;
};

/// Runs `trial(seed)` for `trials` distinct seeds derived from `base_seed`
/// and summarizes the returned measurements. Requires trials >= 1.
TrialAggregate RunTrials(int trials, uint64_t base_seed,
                         const std::function<double(uint64_t)>& trial);

/// Reads a positive integer environment variable, or returns `fallback` if
/// unset/invalid. Benches use this for TRIALS, CENSUS_ROWS, IREDUCT_STEPS.
int64_t EnvInt64(const char* name, int64_t fallback);

}  // namespace ireduct

#endif  // IREDUCT_EVAL_EXPERIMENT_H_
