#include "dp/privacy_accountant.h"

#include <cmath>

namespace ireduct {

namespace {
// Tolerance for floating-point accumulation at the budget boundary: a charge
// is admitted if it exceeds the remaining budget by at most this relative
// slack, so that e.g. ten charges of ε/10 always fit a budget of ε.
constexpr double kRelativeSlack = 1e-9;
}  // namespace

Result<PrivacyAccountant> PrivacyAccountant::Create(double epsilon_budget) {
  if (!(epsilon_budget > 0) || !std::isfinite(epsilon_budget)) {
    return Status::InvalidArgument("privacy budget must be positive finite");
  }
  return PrivacyAccountant(epsilon_budget);
}

bool PrivacyAccountant::CanAfford(double epsilon) const {
  return spent_ + epsilon <= budget_ * (1 + kRelativeSlack);
}

Status PrivacyAccountant::Charge(std::string label, double epsilon) {
  if (!(epsilon > 0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("privacy charge must be positive finite");
  }
  if (!CanAfford(epsilon)) {
    return Status::PrivacyBudgetExceeded(
        "charge '" + label + "' of " + std::to_string(epsilon) +
        " exceeds remaining budget " + std::to_string(remaining()));
  }
  spent_ += epsilon;
  ledger_.push_back(PrivacyCharge{std::move(label), epsilon});
  return Status::OK();
}

}  // namespace ireduct
