#include "dp/privacy_accountant.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace ireduct {

namespace {
// Tolerance for floating-point accumulation at the budget boundary: a charge
// is admitted if it exceeds the remaining budget by at most this relative
// slack, so that e.g. ten charges of ε/10 always fit a budget of ε.
constexpr double kRelativeSlack = 1e-9;
}  // namespace

Result<PrivacyAccountant> PrivacyAccountant::Create(double epsilon_budget) {
  if (!(epsilon_budget > 0) || !std::isfinite(epsilon_budget)) {
    return Status::InvalidArgument("privacy budget must be positive finite");
  }
  return PrivacyAccountant(epsilon_budget);
}

bool PrivacyAccountant::CanAfford(double epsilon) const {
  return spent_ + epsilon <= budget_ * (1 + kRelativeSlack);
}

Status PrivacyAccountant::Charge(std::string label, double epsilon) {
  if (!(epsilon > 0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("privacy charge must be positive finite");
  }
  if (!CanAfford(epsilon)) {
    IREDUCT_LOG(kWarn) << "privacy charge '" << label << "' of " << epsilon
                       << " refused; remaining budget " << remaining();
    return Status::PrivacyBudgetExceeded(
        "charge '" + label + "' of " + std::to_string(epsilon) +
        " exceeds remaining budget " + std::to_string(remaining()));
  }
  spent_ += epsilon;
  ledger_.push_back(PrivacyCharge{std::move(label), epsilon});
  // Gauge semantics: reflects the most recently charged accountant, which
  // in a serving process is the session accountant that owns the budget.
  IREDUCT_METRIC_GAUGE_SET("privacy.epsilon_spent", spent_);
  IREDUCT_METRIC_COUNT("privacy.charges", 1);
  return Status::OK();
}

std::string PrivacyAccountant::ExportLedgerJson() const {
  std::string out;
  obs::JsonWriter json(&out);
  json.BeginObject();
  json.KV("budget", budget_);
  json.KV("spent", spent_);
  json.KV("remaining", std::max(0.0, remaining()));
  json.Key("charges");
  json.BeginArray();
  for (const PrivacyCharge& charge : ledger_) {
    json.BeginObject();
    json.KV("label", charge.label);
    json.KV("epsilon", charge.epsilon);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return out;
}

}  // namespace ireduct
