#include "dp/privacy_accountant.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "dp/ledger_journal.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace ireduct {

namespace {
// Tolerance for floating-point accumulation at the budget boundary: a charge
// is admitted if it exceeds the remaining budget by at most this relative
// slack, so that e.g. ten charges of ε/10 always fit a budget of ε.
constexpr double kRelativeSlack = 1e-9;
}  // namespace

Result<PrivacyAccountant> PrivacyAccountant::Create(double epsilon_budget) {
  if (!(epsilon_budget > 0) || !std::isfinite(epsilon_budget)) {
    return Status::InvalidArgument("privacy budget must be positive finite");
  }
  return PrivacyAccountant(epsilon_budget);
}

Result<PrivacyAccountant> PrivacyAccountant::Restore(
    double epsilon_budget, std::vector<PrivacyCharge> ledger) {
  IREDUCT_ASSIGN_OR_RETURN(PrivacyAccountant accountant,
                           Create(epsilon_budget));
  for (PrivacyCharge& charge : ledger) {
    if (!(charge.epsilon > 0) || !std::isfinite(charge.epsilon)) {
      return Status::InvalidArgument(
          "recovered charge '" + charge.label +
          "' has a non-positive or non-finite epsilon");
    }
    // Plain left-to-right accumulation, exactly as a sequence of Charge
    // calls would have summed — the restored `spent` is bit-identical to
    // the crashed accountant's.
    accountant.spent_ += charge.epsilon;
    accountant.ledger_.push_back(std::move(charge));
  }
  if (accountant.spent_ > accountant.budget_) {
    IREDUCT_LOG(kWarn) << "restored ledger spends " << accountant.spent_
                       << " of budget " << accountant.budget_
                       << "; all further charges will be refused";
  }
  return accountant;
}

bool PrivacyAccountant::CanAfford(double epsilon) const {
  return spent_ + epsilon <= budget_ * (1 + kRelativeSlack);
}

Status PrivacyAccountant::Charge(std::string label, double epsilon) {
  if (!(epsilon > 0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument("privacy charge must be positive finite");
  }
  if (!CanAfford(epsilon)) {
    IREDUCT_LOG(kWarn) << "privacy charge '" << label << "' of " << epsilon
                       << " refused; remaining budget " << remaining();
    return Status::PrivacyBudgetExceeded(
        "charge '" + label + "' of " + std::to_string(epsilon) +
        " exceeds remaining budget " + std::to_string(remaining()));
  }
  if (journal_ != nullptr) {
    // Write-ahead: the grant becomes durable before it becomes visible. A
    // failed append refuses the grant outright — the caller sees the
    // failure before anything depending on the budget can be released —
    // and poisons the journal, so every later Charge is also refused
    // until the journal file is recovered and compacted.
    IREDUCT_RETURN_NOT_OK(journal_->AppendGrant(label, epsilon));
  }
  spent_ += epsilon;
  ledger_.push_back(PrivacyCharge{std::move(label), epsilon});
  // Gauge semantics: reflects the most recently charged accountant, which
  // in a serving process is the session accountant that owns the budget.
  IREDUCT_METRIC_GAUGE_SET("privacy.epsilon_spent", spent_);
  IREDUCT_METRIC_COUNT("privacy.charges", 1);
  return Status::OK();
}

std::string PrivacyAccountant::ExportLedgerJson() const {
  std::string out;
  obs::JsonWriter json(&out);
  json.BeginObject();
  json.KV("budget", budget_);
  json.KV("spent", spent_);
  json.KV("remaining", std::max(0.0, remaining()));
  json.Key("charges");
  json.BeginArray();
  for (const PrivacyCharge& charge : ledger_) {
    json.BeginObject();
    json.KV("label", charge.label);
    json.KV("epsilon", charge.epsilon);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return out;
}

}  // namespace ireduct
