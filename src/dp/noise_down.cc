#include "dp/noise_down.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/numeric.h"
#include "obs/metrics.h"

namespace ireduct {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
// Rejection sampling under a valid envelope terminates quickly; this cap
// only guards against a catastrophic numeric breakdown.
constexpr int kMaxRejectionRounds = 1 << 24;

// ∫_p^q e^{s·d} dd, stable for tiny |s| (and exact for s = 0).
double ExpIntegral(double s, double p, double q) {
  if (s == 0.0) return q - p;
  return std::exp(s * p) * std::expm1(s * (q - p)) / s;
}
}  // namespace

Result<NoiseDownDistribution> NoiseDownDistribution::Create(
    double mu, double y, double lambda, double lambda_prime) {
  if (!std::isfinite(mu) || !std::isfinite(y)) {
    return Status::InvalidArgument("NoiseDown requires finite mu and y");
  }
  if (!(lambda_prime > 0) || !std::isfinite(lambda_prime) ||
      !(lambda > lambda_prime) || !std::isfinite(lambda)) {
    return Status::InvalidArgument(
        "NoiseDown requires 0 < lambda_prime < lambda");
  }

  NoiseDownDistribution d;
  d.lambda_ = lambda;
  d.lambda_prime_ = lambda_prime;
  // Figure 3, lines 1-3: reduce the mu > y case to mu <= y by negating both
  // coordinates (f_{mu}(y'|y) = f_{-mu}(-y'|-y)).
  d.inverted_ = mu > y;
  d.mu_ = d.inverted_ ? -mu : mu;
  d.y_ = d.inverted_ ? -y : y;
  d.xi_ = std::fmin(d.mu_, d.y_ - 1);

  const double a = 1.0 / lambda;         // 1/λ
  const double ap = 1.0 / lambda_prime;  // 1/λ'
  const double c1 = CoshMinusOne(ap);    // cosh(1/λ') - 1
  const double cd = CoshDiff(ap, a);     // cosh(1/λ') - cosh(1/λ) > 0

  // Equation 8: mass of (-∞, ξ].
  d.theta1_ = lambda * cd * std::exp((ap + a) * (d.xi_ - d.mu_)) /
              (2.0 * (lambda_prime + lambda) * c1);
  // Equation 9 with the γ-consistent coefficient (the printed equation
  // carries a spurious cosh(1/λ'); see the header notes): mass of
  // (ξ, y-1]. The trailing factor vanishes exactly when ξ = y-1.
  d.theta2_ = lambda * cd / (2.0 * (lambda - lambda_prime) * c1) *
              (-std::expm1((ap - a) * (d.xi_ - d.y_ + 1)));
  // Equation 10: mass of [y+1, ∞).
  d.theta3_ = lambda * cd *
              std::exp((d.mu_ - d.y_ - 1) * ap - (d.mu_ - d.y_ + 1) * a) /
              (2.0 * (lambda_prime + lambda) * c1);
  d.middle_ = d.MiddleMass();
  d.normalization_ = d.theta1_ + d.theta2_ + d.theta3_ + d.middle_;
  IREDUCT_DCHECK(d.normalization_ > 0);

  // Equation 11 envelope over (y-1, y+1), in log form:
  //   φ = 1/(2λ') · (cosh(1/λ') - e^{-1/λ}) / (cosh(1/λ') - 1)
  //       · exp((y-μ)/λ - max{0, y-μ-1}/λ')
  // with cosh(1/λ') - e^{-1/λ} = (cosh(1/λ') - 1) + (1 - e^{-1/λ}).
  d.log_phi_ = -std::log(2.0 * lambda_prime) +
               std::log(c1 - std::expm1(-a)) - std::log(c1) +
               (d.y_ - d.mu_) * a - std::fmax(0.0, d.y_ - d.mu_ - 1) * ap;
  return d;
}

double NoiseDownDistribution::MiddleMass() const {
  // Mass of the unnormalized Equation 6 density over (y-1, y+1), in
  // canonical orientation. Substituting d = y - y' ∈ (-1, 1) and writing
  // w = y - μ ≥ 0:
  //   f = K · e^{-|w-d|/λ'} · g(d),
  //   g(d) = 2·cosh(1/λ')·e^{-|d|/λ} - e^{-1/λ}·(e^{d/λ} + e^{-d/λ}),
  //   K = e^{w/λ} / (4·λ'·(cosh(1/λ')-1)) · ... (assembled below).
  // Each |·| resolves on fixed subintervals, so every piece is an
  // elementary exponential integral.
  const double a = 1.0 / lambda_;
  const double ap = 1.0 / lambda_prime_;
  const double c1 = CoshMinusOne(ap);
  const double w = y_ - mu_;
  const double two_cosh = 2.0 * std::cosh(ap);
  const double ema = std::exp(-a);

  // ∫ e^{s·d} g(d) dd over [p, q] with q <= 0 or p >= 0 (fixed sign of d).
  auto g_integral = [&](double s, double p, double q) {
    const double abs_rate = (p >= 0) ? -a : a;  // e^{-|d|/λ} on this side
    return two_cosh * ExpIntegral(s + abs_rate, p, q) -
           ema * (ExpIntegral(s + a, p, q) + ExpIntegral(s - a, p, q));
  };

  // The e^{w/λ} prefactor of Equation 6 is folded into the per-zone
  // weights so that w·(1/λ' - 1/λ) never overflows separately (the
  // combined exponents are all bounded above by w·(1/λ - 1/λ') <= 0 plus
  // an O(1/λ') term).
  double total;
  if (w >= 1.0) {
    // w - d > 0 throughout: weight e^{-(w-d)/λ'} = e^{-w/λ'} e^{d/λ'}.
    total = std::exp(w * (a - ap)) *
            (g_integral(ap, -1.0, 0.0) + g_integral(ap, 0.0, 1.0));
  } else {
    // Split at d = w where |w - d| flips (w ∈ [0, 1)).
    total = std::exp(w * (a - ap)) * g_integral(ap, -1.0, 0.0);
    if (w > 0) total += std::exp(w * (a - ap)) * g_integral(ap, 0.0, w);
    total += std::exp(w * (a + ap)) * g_integral(-ap, w, 1.0);
  }
  // Remaining prefactor of Equation 6: (λ/λ')·(1/(4λ))·(1/c1).
  return total / (4.0 * lambda_prime_ * c1);
}

double NoiseDownDistribution::mu() const { return inverted_ ? -mu_ : mu_; }
double NoiseDownDistribution::y() const { return inverted_ ? -y_ : y_; }

double NoiseDownDistribution::phi() const { return std::exp(log_phi_); }

double NoiseDownDistribution::CanonicalLogPdf(double y_prime) const {
  const double a = 1.0 / lambda_;
  const double ap = 1.0 / lambda_prime_;
  const double c1 = CoshMinusOne(ap);
  const double ad = std::fabs(y_ - y_prime);

  // log of the bracketed term of γ (Equation 7):
  //   2·cosh(1/λ')·e^{-|d|/λ} - e^{-|d-1|/λ} - e^{-|d+1|/λ},  d = y - y'.
  double log_term;
  if (ad >= 1) {
    // Simplifies to 2·e^{-|d|/λ}·(cosh(1/λ') - cosh(1/λ)).
    log_term = std::log(2.0) - ad * a + std::log(CoshDiff(ap, a));
  } else {
    // Equals 2·e^{-|d|/λ}·B with
    //   B = (cosh(1/λ')-1) - e^{(|d|-1)/λ}·(cosh(d/λ)-1) - expm1((|d|-1)/λ),
    // every addend individually small-argument safe and B > 0.
    const double bracket = c1 -
                           std::exp((ad - 1) * a) * CoshMinusOne(ad * a) -
                           std::expm1((ad - 1) * a);
    if (!(bracket > 0)) return -kInf;
    log_term = std::log(2.0) - ad * a + std::log(bracket);
  }

  // Equation 6 without γ's constant, assembled in log space. The λ/λ' and
  // 1/(4λ) prefactors combine to 1/(4·λ').
  return -std::log(4.0 * lambda_prime_) - std::log(c1) -
         std::fabs(y_prime - mu_) * ap + std::fabs(y_ - mu_) * a + log_term;
}

double NoiseDownDistribution::LogPdf(double y_prime) const {
  return CanonicalLogPdf(inverted_ ? -y_prime : y_prime) -
         std::log(normalization_);
}

double NoiseDownDistribution::Pdf(double y_prime) const {
  return std::exp(LogPdf(y_prime));
}

double NoiseDownDistribution::Sample(BitGen& gen) const {
  IREDUCT_METRIC_COUNT("noise_down.samples", 1);
  const double a = 1.0 / lambda_;
  const double ap = 1.0 / lambda_prime_;
  // Branch thresholds are the exact normalized segment masses.
  const double t1 = theta1_ / normalization_;
  const double t2 = theta2_ / normalization_;
  const double t3 = theta3_ / normalization_;
  const double u = gen.Uniform();

  double yp;
  if (u < t1) {
    // Left tail (-∞, ξ]: density ∝ exp(y'·(1/λ' + 1/λ)).
    yp = xi_ - gen.Exponential(1.0 / (ap + a));
  } else if (u < t1 + t2) {
    // Middle-left (ξ, y-1]: density ∝ exp(-y'·(1/λ' - 1/λ)).
    const double width = (y_ - 1) - xi_;
    IREDUCT_DCHECK(width > 0);
    yp = xi_ + gen.TruncatedExponential(1.0 / (ap - a), 0.0, width);
  } else if (u > 1.0 - t3) {
    // Right tail [y+1, ∞): density ∝ exp(-y'·(1/λ' + 1/λ)).
    yp = y_ + 1 + gen.Exponential(1.0 / (ap + a));
  } else {
    // Central interval (y-1, y+1): rejection under the constant envelope φ
    // (Proposition 4 guarantees raw f < φ there).
    int rounds = 0;
    for (;;) {
      yp = gen.Uniform(y_ - 1, y_ + 1);
      const double log_accept = CanonicalLogPdf(yp) - log_phi_;
      if (std::log(gen.UniformPositive()) <= log_accept) break;
      IREDUCT_CHECK(++rounds < kMaxRejectionRounds);
    }
    // `rounds` counts only the rejected proposals; the accepted draw makes
    // it rounds + 1 envelope evaluations for this sample.
    IREDUCT_METRIC_COUNT("noise_down.rejection_rounds",
                         static_cast<uint64_t>(rounds));
    IREDUCT_METRIC_COUNT("noise_down.envelope_draws",
                         static_cast<uint64_t>(rounds) + 1);
  }
  return inverted_ ? -yp : yp;
}

Result<double> NoiseDown(double mu, double y, double lambda,
                         double lambda_prime, BitGen& gen) {
  IREDUCT_ASSIGN_OR_RETURN(
      NoiseDownDistribution dist,
      NoiseDownDistribution::Create(mu, y, lambda, lambda_prime));
  return dist.Sample(gen);
}

Result<double> NoiseDownWithStep(double mu, double y, double lambda,
                                 double lambda_prime, double step,
                                 BitGen& gen) {
  if (!(step > 0) || !std::isfinite(step)) {
    return Status::InvalidArgument("NoiseDown step must be positive finite");
  }
  // Rescale to unit step: x -> x/step maps Laplace(μ, λ) to
  // Laplace(μ/step, λ/step) and a ±step sensitivity to ±1.
  IREDUCT_ASSIGN_OR_RETURN(
      double scaled,
      NoiseDown(mu / step, y / step, lambda / step, lambda_prime / step, gen));
  return scaled * step;
}

}  // namespace ireduct
