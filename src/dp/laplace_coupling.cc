#include "dp/laplace_coupling.h"

#include <cmath>

#include "common/logging.h"

namespace ireduct {

namespace {

Status ValidateCouplingParams(double mu, double y, double lambda,
                              double lambda_prime) {
  if (!std::isfinite(mu) || !std::isfinite(y)) {
    return Status::InvalidArgument("coupling requires finite mu and y");
  }
  if (!(lambda_prime > 0) || !std::isfinite(lambda_prime) ||
      !(lambda > lambda_prime) || !std::isfinite(lambda)) {
    return Status::InvalidArgument(
        "coupling requires 0 < lambda_prime < lambda");
  }
  return Status::OK();
}

}  // namespace

double CoupledNoiseDownStickProbability(double mu, double y, double lambda,
                                        double lambda_prime) {
  const double w = std::fabs(y - mu);
  return (lambda_prime / lambda) *
         std::exp(-w * (1.0 / lambda_prime - 1.0 / lambda));
}

Result<double> CoupledNoiseDown(double mu, double y, double lambda,
                                double lambda_prime, BitGen& gen) {
  IREDUCT_RETURN_NOT_OK(ValidateCouplingParams(mu, y, lambda, lambda_prime));

  // Atom branch: keep the old answer.
  if (gen.Bernoulli(
          CoupledNoiseDownStickProbability(mu, y, lambda, lambda_prime))) {
    return y;
  }

  // Continuous branch: density ∝ e^{-|y'-μ|/λ' - |y-y'|/λ}, a piecewise
  // exponential with kinks at y' = μ and y' = y. Work in the canonical
  // orientation μ <= y (mirror otherwise) with w = y - μ >= 0. Segment
  // masses share the common factor e^{-w/λ}, which is divided out so that
  // nothing underflows for large w:
  //   (-∞, μ]: rate (1/λ + 1/λ'), reduced mass 1/(a+a')
  //   (μ, y]:  rate (1/λ' - 1/λ), reduced mass (1 - e^{-w(a'-a)})/(a'-a)
  //   (y, ∞):  rate (1/λ + 1/λ'), reduced mass e^{-w(a'-a)}/(a+a')
  const bool inverted = mu > y;
  const double cmu = inverted ? -mu : mu;
  const double cy = inverted ? -y : y;
  const double a = 1.0 / lambda;
  const double ap = 1.0 / lambda_prime;
  const double w = cy - cmu;
  IREDUCT_DCHECK(w >= 0);

  const double mass_left = 1.0 / (a + ap);
  const double mass_mid = -std::expm1(-w * (ap - a)) / (ap - a);
  const double mass_right = std::exp(-w * (ap - a)) / (a + ap);
  const double total = mass_left + mass_mid + mass_right;

  const double u = gen.Uniform() * total;
  double yp;
  if (u < mass_left) {
    yp = cmu - gen.Exponential(1.0 / (a + ap));
  } else if (u < mass_left + mass_mid && w > 0) {
    yp = cmu + gen.TruncatedExponential(1.0 / (ap - a), 0.0, w);
  } else {
    yp = cy + gen.Exponential(1.0 / (a + ap));
  }
  return inverted ? -yp : yp;
}

}  // namespace ireduct
