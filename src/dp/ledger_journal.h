// Crash-safe write-ahead journal for the privacy ledger.
//
// A crashed run that loses its budget ledger is a correctness hazard, not
// an inconvenience: re-running a mechanism after a crash without the spent
// record silently double-spends ε, and the sequential-composition guarantee
// (paper Theorem 2; PINQ's central invariant) only holds if every grant is
// accounted exactly once. The journal makes the accountant durable:
//
//   * Append-only file of newline-terminated JSON records, each carrying a
//     CRC-32 of its own bytes. The first record fixes the budget; every
//     grant is appended — and fsync'd — *before* the in-memory accountant
//     admits it, so no state that could lead to a release exists anywhere
//     without a durable record of its cost (write-ahead discipline).
//   * Recovery replays a journal into a PrivacyAccountant. It is strict
//     about real corruption — a bad record with more data after it refuses
//     the session — and conservative about crash artifacts: a torn final
//     record (the signature a mid-append crash leaves) counts as spent,
//     provided its ε survived intact; an ε that cannot be confirmed
//     complete also refuses the session, because resuming with an unknown
//     liability could under-report.
//
// Record layout (field order matters: ε precedes the variable-length label
// so torn tails usually keep it recoverable):
//   {"type":"open","version":1,"budget":B,"crc":"xxxxxxxx"}
//   {"type":"grant","seq":N,"epsilon":E,"label":"...","crc":"xxxxxxxx"}
// The CRC covers the record with the `,"crc":"..."` member removed.
#ifndef IREDUCT_DP_LEDGER_JOURNAL_H_
#define IREDUCT_DP_LEDGER_JOURNAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dp/privacy_accountant.h"

namespace ireduct {

/// Append-side handle to a ledger journal file.
class LedgerJournal {
 public:
  /// Creates (truncating any existing file) a fresh journal for a session
  /// with the given ε budget, and makes the open record durable.
  static Result<LedgerJournal> Create(const std::string& path, double budget);

  /// Opens an existing journal for appending. The journal is recovered
  /// first — corrupt journals are refused with the same strictness as
  /// Recover() — and appends continue the sequence number. A torn tail is
  /// refused here: appending after a torn record would turn a crash
  /// artifact into mid-journal corruption; recover and create a fresh
  /// journal instead (RewriteCompacted).
  static Result<LedgerJournal> OpenForAppend(const std::string& path);

  /// Appends one grant record and fsyncs it. Returns only once the record
  /// is durable; any error means the grant MUST NOT be admitted. A failed
  /// append also poisons the journal — the file may hold a torn record,
  /// and gluing another record onto that prefix would turn a salvageable
  /// torn tail into one line recovery mis-reads (dropping the later
  /// grant's ε). Every subsequent append is therefore refused with
  /// kFailedPrecondition until the file is recovered and compacted
  /// (Recover + RewriteCompacted).
  Status AppendGrant(std::string_view label, double epsilon);

  /// What a journal replays to.
  struct Recovered {
    double budget = 0;
    /// Complete grants, in admission order.
    std::vector<PrivacyCharge> charges;
    /// True when a torn final record was found and conservatively counted.
    bool torn_tail = false;
    /// The torn record's ε (already appended to `charges` under the label
    /// "torn grant (unconfirmed)").
    double torn_epsilon = 0;
  };

  /// Reads and validates `path`. Refuses (kIoError) on: unreadable file,
  /// torn/invalid open record, any bad record that is not the final one,
  /// out-of-order sequence numbers, or a torn tail whose ε cannot be
  /// confirmed complete.
  static Result<Recovered> Recover(const std::string& path);

  /// Builds an accountant holding the recovered budget with every
  /// recovered charge (torn tail included) already spent. The recovered
  /// spend may exceed the budget — conservative recovery never
  /// under-reports — in which case every further charge is refused.
  static Result<PrivacyAccountant> Replay(const Recovered& recovered);

  /// Writes a fresh journal at `path` (atomically, via rename) holding the
  /// recovered state as its initial records. This is how a session resumes
  /// after a torn tail: the torn liability becomes a complete, CRC-valid
  /// grant record in the new journal.
  static Result<LedgerJournal> RewriteCompacted(const std::string& path,
                                                const Recovered& recovered);

  const std::string& path() const { return path_; }
  /// Sequence number the next grant record will carry.
  uint64_t next_seq() const { return next_seq_; }

  ~LedgerJournal();
  LedgerJournal(LedgerJournal&& other) noexcept;
  LedgerJournal& operator=(LedgerJournal&& other) noexcept;
  LedgerJournal(const LedgerJournal&) = delete;
  LedgerJournal& operator=(const LedgerJournal&) = delete;

 private:
  LedgerJournal(std::string path, int fd, uint64_t next_seq)
      : path_(std::move(path)), fd_(fd), next_seq_(next_seq) {}

  // Writes `record` (with trailing newline) and fsyncs. Fault point
  // "journal.append": kFail writes nothing; kTruncate persists a prefix —
  // a torn record — and reports failure. Any failure closes the fd and
  // sets poisoned_, enforcing the no-append-after-failure contract.
  Status AppendDurable(const std::string& record);

  std::string path_;
  int fd_ = -1;
  uint64_t next_seq_ = 1;
  // Sticky: set on the first failed append; refuses all later appends.
  bool poisoned_ = false;
};

/// CRC-32 (IEEE 802.3, reflected) of `data` — exposed for tests that
/// construct journal corruption by hand.
uint32_t Crc32(std::string_view data);

/// fsyncs the directory containing `path`, making a just-completed rename
/// into that directory durable. Shared by the journal-compaction and
/// checkpoint rename paths.
Status SyncParentDir(const std::string& path);

/// Seals a complete JSON object into a self-checking record by splicing a
/// `"crc"` member (the CRC-32 of `body`) in as its final member. Shared by
/// journal records and checkpoint files.
std::string SealJsonRecord(const std::string& body);

/// Reverses SealJsonRecord: verifies the CRC and returns the body without
/// the crc member. False when the member is missing, malformed, or wrong.
bool UnsealJsonRecord(std::string_view record, std::string* body);

}  // namespace ireduct

#endif  // IREDUCT_DP_LEDGER_JOURNAL_H_
