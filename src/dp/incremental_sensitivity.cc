#include "dp/incremental_sensitivity.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "obs/metrics.h"

namespace ireduct {

IncrementalSensitivity::IncrementalSensitivity(const Workload& workload,
                                               std::span<const double> scales,
                                               size_t resync_interval)
    : workload_(&workload),
      scales_(scales.begin(), scales.end()),
      incremental_(!workload.has_custom_sensitivity()),
      resync_interval_(resync_interval == 0 ? 1 : resync_interval) {
  IREDUCT_DCHECK(scales_.size() == workload.num_groups());
  coeffs_.reserve(workload.num_groups());
  for (size_t g = 0; g < workload.num_groups(); ++g) {
    coeffs_.push_back(workload.group(g).sensitivity_coeff);
  }
  value_ = FullRecompute();
}

double IncrementalSensitivity::FullRecompute() const {
  IREDUCT_METRIC_COUNT("ireduct.gs_full_recomputes", 1);
  return workload_->GeneralizedSensitivity(scales_);
}

double IncrementalSensitivity::Trial(size_t g, double new_scale) {
  IREDUCT_DCHECK(g < scales_.size());
  if (!(new_scale > 0)) return std::numeric_limits<double>::infinity();
  if (!incremental_) return TrialExact(g, new_scale);
  IREDUCT_METRIC_COUNT("ireduct.gs_incremental_hits", 1);
  return value_ + coeffs_[g] * (1.0 / new_scale - 1.0 / scales_[g]);
}

double IncrementalSensitivity::TrialExact(size_t g, double new_scale) {
  IREDUCT_DCHECK(g < scales_.size());
  const double old_scale = scales_[g];
  scales_[g] = new_scale;
  const double gs = FullRecompute();
  scales_[g] = old_scale;
  return gs;
}

void IncrementalSensitivity::Commit(size_t g, double new_scale) {
  IREDUCT_DCHECK(g < scales_.size());
  const double old_scale = scales_[g];
  scales_[g] = new_scale;
  if (!incremental_) {
    value_ = FullRecompute();
    return;
  }
  // Kahan-compensated accumulation of the move's exact delta.
  const double delta = coeffs_[g] * (1.0 / new_scale - 1.0 / old_scale);
  const double y = delta - compensation_;
  const double t = value_ + y;
  compensation_ = (t - value_) - y;
  value_ = t;
  if (++commits_since_resync_ >= resync_interval_) Resync();
}

double IncrementalSensitivity::Resync() {
  value_ = FullRecompute();
  compensation_ = 0;
  commits_since_resync_ = 0;
  return value_;
}

}  // namespace ireduct
