// Durable checkpoint/resume for the iterative mechanisms.
//
// A long iReduct/iResamp run that dies mid-refinement loses work and — far
// worse — leaves the privacy ledger unable to say how much ε the partial
// run consumed. Checkpoints make runs resumable without weakening the
// guarantee:
//
//  * A RunCheckpoint carries the complete loop state — noisy answers,
//    per-group scales, the active mask, the RNG engine words and the
//    incremental-GS running totals (including the Kahan carry) — so a
//    resumed run continues *bit-identically* to the interrupted one. The
//    resumed process therefore releases exactly the values the uninterrupted
//    process would have released, and re-execution costs no additional ε
//    (the paper's composition argument charges the released values, not the
//    CPU time spent computing them).
//  * Journal-first ordering (JournalingCheckpointSink): at each boundary the
//    ε growth since the previous boundary is charged to the accountant —
//    and hence made durable in the write-ahead ledger journal — *before*
//    the checkpoint file becomes visible. A crash between the two leaves
//    the journal ahead of the checkpoint; on resume the restored
//    accountant's spend already covers the re-executed boundary, its delta
//    is ≤ 0, and nothing is double-charged. Recovered ε_spent can only ever
//    be an over-estimate, never an under-estimate.
//
// Checkpoint files are single sealed JSON records (see
// dp/ledger_journal.h's SealJsonRecord) written atomically via
// tmp + fsync + rename, so a crash mid-write never corrupts the previous
// checkpoint.
#ifndef IREDUCT_DP_CHECKPOINT_H_
#define IREDUCT_DP_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dp/incremental_sensitivity.h"
#include "dp/privacy_accountant.h"
#include "dp/workload.h"

namespace ireduct {

/// Complete state of an interrupted refinement loop at a round boundary.
struct RunCheckpoint {
  static constexpr uint64_t kVersion = 1;

  /// Which loop wrote this ("ireduct" or "iresamp"); a resume refuses a
  /// checkpoint from the other algorithm.
  std::string algorithm;
  /// Structural fingerprint of the workload (FingerprintWorkload); a resume
  /// against a different workload is refused rather than silently wrong.
  uint64_t workload_fingerprint = 0;
  /// Refinement rounds completed when this checkpoint was taken.
  uint64_t round = 0;
  uint64_t iterations = 0;
  uint64_t resample_calls = 0;
  /// Exact GS(group_scales) at this boundary — what the privacy ledger is
  /// charged up to (see JournalingCheckpointSink).
  double epsilon_spent = 0;
  /// xoshiro256++ engine words (BitGen::SaveState) captured *after* the
  /// round's draws, so the resumed stream continues where this one stopped.
  std::array<uint64_t, 4> rng_state{};
  /// Incremental-GS running totals (value, Kahan carry, resync phase).
  IncrementalSensitivity::Snapshot gs;

  std::vector<double> answers;
  /// Per-group scales; for iResamp these are the *effective* scales that
  /// govern privacy.
  std::vector<double> group_scales;
  std::vector<uint8_t> active;

  // iResamp only (empty for iReduct): raw sample scales and the
  // inverse-variance accumulators of Equation 16.
  std::vector<double> nominal_scales;
  std::vector<double> weighted_sum;
  std::vector<double> weight;
};

/// FNV-1a fingerprint of the workload's *structure*: query/group counts,
/// group boundaries, names and sensitivity coefficients, and whether GS is
/// custom. Deliberately excludes the true answers — a checkpoint file must
/// not embed a digest of the private data.
uint64_t FingerprintWorkload(const Workload& workload);

/// Checks that `checkpoint` can resume a run of `algorithm` (either
/// "ireduct" or "iresamp") over `workload`: the recorded algorithm and
/// workload fingerprint must match and every state vector must have the
/// workload's dimensions. kInvalidArgument otherwise.
Status ValidateResume(const RunCheckpoint& checkpoint,
                      std::string_view algorithm, const Workload& workload);

/// Renders a checkpoint as one sealed JSON record (deterministic field
/// order, shortest-round-trip doubles, CRC-32 trailer), so equal states
/// serialize to identical bytes.
std::string SerializeCheckpoint(const RunCheckpoint& checkpoint);

/// Reverses SerializeCheckpoint. Refuses (kIoError) records whose CRC does
/// not verify, whose version is unknown, or whose shape is malformed.
Result<RunCheckpoint> ParseCheckpoint(std::string_view text);

/// Where the refinement loops deliver their periodic checkpoints.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  /// Makes `checkpoint` durable. An error aborts the run — continuing past
  /// a failed checkpoint would silently lose crash safety.
  virtual Status Write(const RunCheckpoint& checkpoint) = 0;
};

/// Atomic single-file sink: serialize to `path + ".tmp"`, fsync, rename
/// over `path`, fsync the directory. A crash mid-write leaves the previous
/// checkpoint intact. Fault point "checkpoint.write": kFail writes
/// nothing; kTruncate renames a truncated record into place (a corrupt
/// checkpoint, which Load refuses).
class FileCheckpointSink : public CheckpointSink {
 public:
  explicit FileCheckpointSink(std::string path) : path_(std::move(path)) {}

  Status Write(const RunCheckpoint& checkpoint) override;

  /// Reads and validates the checkpoint at `path`.
  static Result<RunCheckpoint> Load(const std::string& path);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Composes ledger-before-checkpoint ordering: charges the accountant for
/// the growth `checkpoint.epsilon_spent - accountant->spent()` (skipped
/// when ≤ 0, i.e. on a re-executed boundary after resume) and only then
/// forwards to the inner sink. With a journal attached to the accountant
/// the charge is durable before the checkpoint is, which is the invariant
/// the recovery story rests on.
class JournalingCheckpointSink : public CheckpointSink {
 public:
  /// Both pointers are borrowed and must outlive the sink.
  JournalingCheckpointSink(PrivacyAccountant* accountant,
                           CheckpointSink* inner)
      : accountant_(accountant), inner_(inner) {}

  Status Write(const RunCheckpoint& checkpoint) override;

 private:
  PrivacyAccountant* accountant_;
  CheckpointSink* inner_;
};

/// Periodic-checkpoint configuration carried in mechanism params. Inactive
/// (the default) unless both a sink and a positive cadence are set.
struct CheckpointOptions {
  /// Borrowed; must outlive the run. nullptr disables checkpointing.
  CheckpointSink* sink = nullptr;
  /// Checkpoint every this many completed rounds; 0 disables.
  uint64_t every = 0;

  bool enabled() const { return sink != nullptr && every > 0; }
};

}  // namespace ireduct

#endif  // IREDUCT_DP_CHECKPOINT_H_
