// The Laplace mechanism with per-query noise scales.
//
// Proposition 1 (Dwork et al.): adding i.i.d. Laplace(λ) noise to every
// answer of Q gives (S(Q)/λ)-differential privacy. Proposition 2 (Xiao et
// al.): with per-query scales Λ, it gives GS(Q, Λ)-differential privacy.
// `LaplaceNoise` below is the `LaplaceNoise(T, Q, Λ)` primitive used
// throughout the paper's pseudo-code.
#ifndef IREDUCT_DP_LAPLACE_MECHANISM_H_
#define IREDUCT_DP_LAPLACE_MECHANISM_H_

#include <span>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "dp/workload.h"

namespace ireduct {

/// Adds independent Laplace noise to each value; `scales[i]` is the noise
/// scale for `values[i]`. Sizes must match and scales must be positive.
/// Batches of >= 16 draw through BitGen::LaplaceBatch (vectorized, four
/// Fork substreams); smaller batches draw per element. Either way the
/// output is a deterministic function of (gen state, values, scales) —
/// identical on every SIMD tier, thread count, and machine.
Result<std::vector<double>> AddLaplaceNoise(std::span<const double> values,
                                            std::span<const double> scales,
                                            BitGen& gen);

/// Adds Laplace noise to every true answer of `workload`, with all queries
/// in group g using `group_scales[g]`. The release is
/// GS(Q, Λ)-differentially private (Proposition 2).
Result<std::vector<double>> LaplaceNoise(const Workload& workload,
                                         std::span<const double> group_scales,
                                         BitGen& gen);

}  // namespace ireduct

#endif  // IREDUCT_DP_LAPLACE_MECHANISM_H_
