// Stateful NoiseDown reduction chain for a single query.
//
// iReduct drives many interleaved reductions itself; applications that
// publish one value progressively ("release a rough count now, refine it
// when the analyst asks") can use this helper instead. It owns the current
// (answer, scale) pair, applies correlated resampling on each Reduce() and
// charges a PrivacyAccountant only for the *incremental* cost
//   c·(1/λ_new - 1/λ_old_chain_start)  —  i.e. the chain's total charge
// always equals one release at the current scale (times the documented
// slack of the chosen reducer).
#ifndef IREDUCT_DP_NOISE_DOWN_CHAIN_H_
#define IREDUCT_DP_NOISE_DOWN_CHAIN_H_

#include "common/random.h"
#include "common/result.h"
#include "dp/privacy_accountant.h"

namespace ireduct {

/// Which resampler a chain uses; see dp/noise_down.h and
/// dp/laplace_coupling.h.
enum class ChainReducer {
  kPaperNoiseDown,
  kExactCoupling,
};

/// Options for a NoiseDownChain.
struct NoiseDownChainOptions {
  /// Per-tuple sensitivity of the query (the budget charged per release at
  /// scale λ is sensitivity/λ).
  double sensitivity = 1.0;
  ChainReducer reducer = ChainReducer::kExactCoupling;
  /// Multiplicative privacy slack charged for the paper reducer (see the
  /// reproduction notes in dp/noise_down.h); ignored for kExactCoupling.
  double paper_reducer_slack = 1.06;
};

/// A progressively refinable noisy release of one query answer.
class NoiseDownChain {
 public:
  /// Publishes the initial answer: true_answer + Laplace(initial_scale),
  /// charging `accountant` for a release at that scale. The accountant
  /// must outlive the chain.
  static Result<NoiseDownChain> Start(double true_answer,
                                      double initial_scale,
                                      const NoiseDownChainOptions& options,
                                      PrivacyAccountant& accountant,
                                      BitGen& gen);

  /// Refines the current answer down to `new_scale` (< current scale),
  /// charging only the incremental budget. On budget exhaustion the chain
  /// is left unchanged and kPrivacyBudgetExceeded is returned.
  Status Reduce(double new_scale, BitGen& gen);

  /// The currently published answer.
  double answer() const { return answer_; }
  /// Its noise scale.
  double scale() const { return scale_; }
  /// Total ε charged by this chain so far.
  double epsilon_spent() const { return spent_; }
  /// Number of reductions applied.
  int reductions() const { return reductions_; }

 private:
  NoiseDownChain(double true_answer, NoiseDownChainOptions options,
                 PrivacyAccountant* accountant)
      : true_answer_(true_answer),
        options_(options),
        accountant_(accountant) {}

  double ChargeFor(double scale) const;

  double true_answer_ = 0;
  NoiseDownChainOptions options_;
  PrivacyAccountant* accountant_ = nullptr;
  double answer_ = 0;
  double scale_ = 0;
  double spent_ = 0;
  int reductions_ = 0;
};

}  // namespace ireduct

#endif  // IREDUCT_DP_NOISE_DOWN_CHAIN_H_
