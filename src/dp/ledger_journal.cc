#include "dp/ledger_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/fault.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace ireduct {

namespace {

constexpr std::string_view kCrcMember = ",\"crc\":\"";
constexpr std::string_view kTornLabel = "torn grant (unconfirmed)";

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

std::string OpenRecordBody(double budget) {
  std::string body;
  obs::JsonWriter json(&body);
  json.BeginObject();
  json.KV("type", "open");
  json.KV("version", uint64_t{1});
  json.KV("budget", budget);
  json.EndObject();
  return body;
}

std::string GrantRecordBody(uint64_t seq, double epsilon,
                            std::string_view label) {
  std::string body;
  obs::JsonWriter json(&body);
  json.BeginObject();
  json.KV("type", "grant");
  json.KV("seq", seq);
  json.KV("epsilon", epsilon);
  json.KV("label", label);
  json.EndObject();
  return body;
}

Result<double> ParseDoubleField(const obs::JsonValue& doc,
                                std::string_view key) {
  const obs::JsonValue* field = doc.Find(key);
  if (field == nullptr || !field->is(obs::JsonValue::Kind::kNumber)) {
    return Status::IoError("journal record is missing numeric '" +
                           std::string(key) + "'");
  }
  // Parse the raw token so the writer's shortest-round-trip rendering
  // restores the exact double.
  char* end = nullptr;
  const double value = std::strtod(field->text.c_str(), &end);
  if (end != field->text.c_str() + field->text.size()) {
    return Status::IoError("journal record has malformed '" +
                           std::string(key) + "'");
  }
  return value;
}

// Salvages the ε of a torn grant record. Conservative: the number must be
// followed by a non-numeric byte within the preserved prefix, otherwise the
// value itself may be truncated (0.12 of 0.125) and counting it would
// under-report. Returns false when ε cannot be confirmed complete.
bool SalvageTornEpsilon(std::string_view partial, double* epsilon) {
  constexpr std::string_view kKey = "\"epsilon\":";
  const size_t at = partial.find(kKey);
  if (at == std::string_view::npos) return false;
  const std::string token(partial.substr(at + kKey.size()));
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str()) return false;
  if (static_cast<size_t>(end - token.c_str()) >= token.size()) {
    return false;  // the number runs to the tear; it may be cut short
  }
  if (!(value > 0) || !std::isfinite(value)) return false;
  *epsilon = value;
  return true;
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("writing journal", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  // IEEE 802.3 reflected polynomial, nibble-at-a-time table.
  static constexpr uint32_t kTable[16] = {
      0x00000000, 0x1db71064, 0x3b6e20c8, 0x26d930ac,
      0x76dc4190, 0x6b6b51f4, 0x4db26158, 0x5005713c,
      0xedb88320, 0xf00f9344, 0xd6d6a3e8, 0xcb61b38c,
      0x9b64c2b0, 0x86d3d2d4, 0xa00ae278, 0xbdbdf21c};
  uint32_t crc = 0xffffffffu;
  for (const char c : data) {
    const auto byte = static_cast<uint8_t>(c);
    crc = kTable[(crc ^ byte) & 0xf] ^ (crc >> 4);
    crc = kTable[(crc ^ (byte >> 4)) & 0xf] ^ (crc >> 4);
  }
  return crc ^ 0xffffffffu;
}

Status SyncParentDir(const std::string& path) {
  const size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("opening directory", dir));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError(ErrnoMessage("fsyncing directory", dir));
  }
  return Status::OK();
}

std::string SealJsonRecord(const std::string& body) {
  char hex[9];
  std::snprintf(hex, sizeof(hex), "%08x", Crc32(body));
  std::string record(body.begin(), body.end() - 1);  // drop closing '}'
  record += kCrcMember;
  record += hex;
  record += "\"}";
  return record;
}

bool UnsealJsonRecord(std::string_view record, std::string* body) {
  const size_t at = record.rfind(kCrcMember);
  // ...,"crc":"xxxxxxxx"}
  if (at == std::string_view::npos ||
      record.size() != at + kCrcMember.size() + 10 ||
      record.back() != '}' || record[record.size() - 2] != '"') {
    return false;
  }
  const std::string_view hex = record.substr(at + kCrcMember.size(), 8);
  uint32_t stored = 0;
  for (const char c : hex) {
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    stored = stored << 4 | digit;
  }
  body->assign(record.substr(0, at));
  body->push_back('}');
  return Crc32(*body) == stored;
}

Result<LedgerJournal> LedgerJournal::Create(const std::string& path,
                                            double budget) {
  if (!(budget > 0) || !std::isfinite(budget)) {
    return Status::InvalidArgument(
        "journal budget must be positive finite");
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("creating journal", path));
  }
  LedgerJournal journal(path, fd, 1);
  IREDUCT_RETURN_NOT_OK(
      journal.AppendDurable(SealJsonRecord(OpenRecordBody(budget))));
  return journal;
}

Result<LedgerJournal> LedgerJournal::OpenForAppend(const std::string& path) {
  IREDUCT_ASSIGN_OR_RETURN(const Recovered recovered, Recover(path));
  if (recovered.torn_tail) {
    return Status::IoError(
        "journal '" + path +
        "' ends in a torn record; rewrite it (RewriteCompacted) before "
        "appending");
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("opening journal", path));
  }
  return LedgerJournal(path, fd,
                       static_cast<uint64_t>(recovered.charges.size()) + 1);
}

LedgerJournal::~LedgerJournal() {
  if (fd_ >= 0) ::close(fd_);
}

LedgerJournal::LedgerJournal(LedgerJournal&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      next_seq_(other.next_seq_),
      poisoned_(other.poisoned_) {
  other.fd_ = -1;
}

LedgerJournal& LedgerJournal::operator=(LedgerJournal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    next_seq_ = other.next_seq_;
    poisoned_ = other.poisoned_;
    other.fd_ = -1;
  }
  return *this;
}

Status LedgerJournal::AppendDurable(const std::string& record) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "journal '" + path_ +
        "' had a failed append and may hold a torn record; recover and "
        "compact it (Recover + RewriteCompacted) before appending again");
  }
  if (fd_ < 0) {
    return Status::FailedPrecondition("journal '" + path_ + "' is closed");
  }
  // Any failure poisons the journal: the file may now end in a torn
  // prefix, and a later append would glue its record onto that prefix —
  // one line that recovery would mis-read as a single torn record,
  // silently dropping the later grant's ε.
  auto poison = [this](Status status) {
    poisoned_ = true;
    ::close(fd_);
    fd_ = -1;
    return status;
  };
  std::string line = record;
  line.push_back('\n');
  const FaultDecision fault = FaultInjector::Global().Hit("journal.append");
  if (fault.action == FaultAction::kFail) {
    return poison(Status::IoError("injected fault: journal append failed"));
  }
  if (fault.action == FaultAction::kTruncate) {
    // A crash mid-write: some prefix of the record reaches the disk, the
    // rest never does. Persist the prefix so recovery sees the torn state,
    // then report the failure the process would never have observed.
    const size_t keep =
        std::min<size_t>(fault.truncate_bytes, line.size());
    if (Status s = WriteAll(fd_, line.substr(0, keep), path_); !s.ok()) {
      return poison(std::move(s));
    }
    ::fsync(fd_);
    return poison(Status::IoError("injected fault: journal append torn after " +
                                  std::to_string(keep) + " bytes"));
  }
  const auto write_start = std::chrono::steady_clock::now();
  if (Status s = WriteAll(fd_, line, path_); !s.ok()) {
    return poison(std::move(s));
  }
  const auto fsync_start = std::chrono::steady_clock::now();
  if (::fsync(fd_) != 0) {
    return poison(Status::IoError(ErrnoMessage("fsyncing journal", path_)));
  }
  const auto done = std::chrono::steady_clock::now();
  IREDUCT_METRIC_COUNT("journal.appends", 1);
  IREDUCT_METRIC_OBSERVE(
      "journal.append_seconds",
      std::chrono::duration<double>(done - write_start).count());
  IREDUCT_METRIC_OBSERVE(
      "journal.fsync_seconds",
      std::chrono::duration<double>(done - fsync_start).count());
  IREDUCT_METRIC_OBSERVE_BUCKETS("journal.append_bytes",
                                 static_cast<double>(line.size()),
                                 obs::ByteBucketBounds());
  return Status::OK();
}

Status LedgerJournal::AppendGrant(std::string_view label, double epsilon) {
  if (!(epsilon > 0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "journal grant epsilon must be positive finite");
  }
  IREDUCT_RETURN_NOT_OK(
      AppendDurable(SealJsonRecord(GrantRecordBody(next_seq_, epsilon, label))));
  if (obs::EventLog* events = obs::EventLog::Get()) {
    events->Emit("journal.append", {{"grant_seq", next_seq_},
                                    {"label", label},
                                    {"epsilon", epsilon}});
  }
  ++next_seq_;
  return Status::OK();
}

Result<LedgerJournal::Recovered> LedgerJournal::Recover(
    const std::string& path) {
  std::string contents;
  {
    FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      return Status::IoError(ErrnoMessage("reading journal", path));
    }
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
      contents.append(buf, n);
    }
    const bool read_error = std::ferror(file) != 0;
    std::fclose(file);
    if (read_error) {
      return Status::IoError(ErrnoMessage("reading journal", path));
    }
  }
  if (contents.empty()) {
    return Status::IoError("journal '" + path + "' is empty");
  }

  // Split into lines; an unterminated final segment is a torn candidate.
  std::vector<std::string_view> lines;
  std::string_view tail;
  {
    std::string_view rest = contents;
    while (!rest.empty()) {
      const size_t nl = rest.find('\n');
      if (nl == std::string_view::npos) {
        tail = rest;
        break;
      }
      lines.push_back(rest.substr(0, nl));
      rest = rest.substr(nl + 1);
    }
  }

  Recovered recovered;
  uint64_t expected_seq = 1;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string body;
    const bool valid = UnsealJsonRecord(lines[i], &body);
    obs::JsonValue doc;
    if (valid) {
      auto parsed = obs::JsonParse(body);
      if (!parsed.ok()) {
        return Status::IoError("journal '" + path + "' record " +
                               std::to_string(i) + " is unparseable: " +
                               parsed.status().message());
      }
      doc = std::move(*parsed);
    }
    if (!valid) {
      // A bad record with data after it is corruption, not a crash
      // artifact: refuse. A bad *final* line is handled as a torn tail
      // below (a crash can tear a record that happens to contain a
      // newline-looking byte only before the CRC seal completes).
      if (i + 1 != lines.size() || !tail.empty()) {
        return Status::IoError("journal '" + path + "' record " +
                               std::to_string(i) +
                               " fails its CRC with records after it; "
                               "refusing corrupt journal");
      }
      tail = lines[i];
      break;
    }
    const obs::JsonValue* type = doc.Find("type");
    if (type == nullptr || !type->is(obs::JsonValue::Kind::kString)) {
      return Status::IoError("journal '" + path + "' record " +
                             std::to_string(i) + " has no type");
    }
    if (i == 0) {
      if (type->text != "open") {
        return Status::IoError("journal '" + path +
                               "' does not start with an open record");
      }
      IREDUCT_ASSIGN_OR_RETURN(recovered.budget,
                               ParseDoubleField(doc, "budget"));
      if (!(recovered.budget > 0) || !std::isfinite(recovered.budget)) {
        return Status::IoError("journal '" + path +
                               "' open record has an invalid budget");
      }
      continue;
    }
    if (type->text != "grant") {
      return Status::IoError("journal '" + path + "' record " +
                             std::to_string(i) + " has unknown type '" +
                             type->text + "'");
    }
    IREDUCT_ASSIGN_OR_RETURN(const double seq, ParseDoubleField(doc, "seq"));
    if (seq != static_cast<double>(expected_seq)) {
      return Status::IoError("journal '" + path + "' record " +
                             std::to_string(i) +
                             " is out of sequence; refusing corrupt journal");
    }
    ++expected_seq;
    IREDUCT_ASSIGN_OR_RETURN(const double epsilon,
                             ParseDoubleField(doc, "epsilon"));
    if (!(epsilon > 0) || !std::isfinite(epsilon)) {
      return Status::IoError("journal '" + path + "' record " +
                             std::to_string(i) + " has an invalid epsilon");
    }
    const obs::JsonValue* label = doc.Find("label");
    if (label == nullptr || !label->is(obs::JsonValue::Kind::kString)) {
      return Status::IoError("journal '" + path + "' record " +
                             std::to_string(i) + " has no label");
    }
    recovered.charges.push_back(PrivacyCharge{label->text, epsilon});
  }

  if (!tail.empty()) {
    if (lines.empty()) {
      return Status::IoError("journal '" + path +
                             "' has a torn open record; no budget is "
                             "recoverable");
    }
    // Crash mid-append. Conservative: the grant may or may not have
    // reached the accountant before the crash, so count it as spent —
    // but only if its ε provably survived the tear in full.
    double epsilon = 0;
    if (!SalvageTornEpsilon(tail, &epsilon)) {
      return Status::IoError(
          "journal '" + path +
          "' ends in a torn record whose epsilon cannot be confirmed; "
          "refusing to resume with an unknown liability");
    }
    recovered.torn_tail = true;
    recovered.torn_epsilon = epsilon;
    recovered.charges.push_back(
        PrivacyCharge{std::string(kTornLabel), epsilon});
    IREDUCT_LOG(kWarn) << "journal '" << path
                       << "' recovered with a torn tail; counting epsilon "
                       << epsilon << " as spent";
  }
  IREDUCT_METRIC_COUNT("journal.recoveries", 1);
  return recovered;
}

Result<PrivacyAccountant> LedgerJournal::Replay(const Recovered& recovered) {
  return PrivacyAccountant::Restore(recovered.budget, recovered.charges);
}

Result<LedgerJournal> LedgerJournal::RewriteCompacted(
    const std::string& path, const Recovered& recovered) {
  const std::string tmp = path + ".tmp";
  Status written = Status::OK();
  {
    auto journal = Create(tmp, recovered.budget);
    if (!journal.ok()) {
      written = journal.status();
    } else {
      for (const PrivacyCharge& charge : recovered.charges) {
        written = journal->AppendGrant(charge.label, charge.epsilon);
        if (!written.ok()) break;
      }
    }
  }
  if (!written.ok()) {
    ::unlink(tmp.c_str());  // don't leak a half-written rewrite
    return written;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status renamed = Status::IoError(ErrnoMessage("renaming journal", path));
    ::unlink(tmp.c_str());
    return renamed;
  }
  // Make the rename itself durable: without the directory fsync a crash
  // here could resurrect the pre-compaction torn journal after the caller
  // was told its liability is sealed.
  IREDUCT_RETURN_NOT_OK(SyncParentDir(path));
  return OpenForAppend(path);
}

}  // namespace ireduct
