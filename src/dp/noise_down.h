// The NoiseDown resampling distribution (paper Section 4, the core of
// iReduct).
//
// Setting: Y = q(T) + Lap(λ) has already been published. We want a fresh,
// less-noisy estimate Y' that marginally follows q(T) + Lap(λ') with
// λ' < λ, *without* paying additional privacy budget for Y. Definition 5
// gives the conditional density of Y' given Y = y (Equation 6):
//
//   f_{μ,λ,λ'}(y' | y) ∝ (λ/λ') · exp(-|y'-μ|/λ') / exp(-|y-μ|/λ)
//                        · γ(λ', λ, y', y)
//   γ = 1/(4λ) · 1/(cosh(1/λ')-1)
//       · ( 2·cosh(1/λ')·e^{-|y-y'|/λ} - e^{-|y-y'-1|/λ} - e^{-|y-y'+1|/λ} )
//
// The key privacy property (Theorem 1(ii)) holds exactly and structurally:
// the joint density factors as
//   Lap(y; μ, λ) · f(y' | y) = Lap(y'; μ, λ') · γ(λ', λ, y', y) / Z
// with γ/Z independent of μ, so an adversary seeing the pair (Y, Y')
// learns no more than one seeing Y' alone, and the count-query privacy
// cost of the whole NoiseDown chain is 1/λ' up to O(1/λ'²).
//
// REPRODUCTION NOTES (verified analytically and numerically; see
// DESIGN.md):
//  * As printed, Equation 6's density does not integrate to 1 exactly — a
//    Fourier argument shows no smooth kernel in y-y' can make both
//    Theorem 1 claims exact (exactness needs an atom at y' = y; see
//    dp/laplace_coupling.h for that exact variant). We therefore implement
//    the *normalized* density f/Z with the normalizer Z in closed form.
//    The deficit |Z-1| is ≈ 0.03/λ' when the previous answer sits within
//    unit distance of the true answer (|y-μ| < 1) and O(1/λ'²) otherwise.
//    Consequences: (a) the pair (Y, Y') is (c/λ')-differentially private
//    with c ≤ ~1.06 rather than exactly 1; (b) the chain marginal deviates
//    from Lap(μ, λ') by O(1/λ'²) in Kolmogorov distance (the |y-μ| < 1
//    states have probability ~1/λ under the chain). At the paper's
//    operating scales (λ' = 10^4..10^6) both effects are invisible in
//    every experiment.
//  * Equation 9 (the mass θ2 of the segment (ξ, y-1]) as printed carries
//    an extra cosh(1/λ') factor that is inconsistent with Equation 6 (it
//    can exceed 1); we use the γ-consistent mass
//      θ2 = λ·(cosh(1/λ')-cosh(1/λ)) / (2(λ-λ')(cosh(1/λ')-1))
//           · (1 - e^{(1/λ'-1/λ)(ξ-y+1)}),
//    which matches the printed form with the spurious factor removed.
//
// Sampling (Figure 3): with μ ≤ y (the μ > y case is reduced by negating
// both), let ξ = min{μ, y-1}. The density is piecewise exponential on
// (-∞, ξ], (ξ, y-1] and [y+1, ∞) with closed-form masses θ1, θ2, θ3
// (Equations 8-10); on the middle interval (y-1, y+1) it is sampled by
// rejection under the constant envelope φ (Equation 11, Proposition 4).
//
// Everything is computed in numerically stable form: the experiments run
// at λ up to |T|/10 ≈ 10^6, where cosh(1/λ)-1 ≈ 5·10^-13 underflows to
// zero significant digits if evaluated naively.
#ifndef IREDUCT_DP_NOISE_DOWN_H_
#define IREDUCT_DP_NOISE_DOWN_H_

#include "common/random.h"
#include "common/result.h"

namespace ireduct {

/// The conditional distribution of the reduced-noise answer Y' given the
/// previous noisy answer Y = y (Definition 5), normalized exactly, with
/// full access to its density, segment masses and rejection envelope.
class NoiseDownDistribution {
 public:
  /// Parameters: `mu` is the true query answer q(T), `y` the previously
  /// published noisy answer, `lambda` its noise scale, and `lambda_prime`
  /// the reduced target scale. Requires 0 < lambda_prime < lambda.
  static Result<NoiseDownDistribution> Create(double mu, double y,
                                              double lambda,
                                              double lambda_prime);

  /// Normalized conditional density f(y' | Y = y).
  double Pdf(double y_prime) const;

  /// log of Pdf; -infinity where the density is zero.
  double LogPdf(double y_prime) const;

  /// Mass of the left tail (-∞, ξ] (Equation 8, normalized), in canonical
  /// (μ ≤ y) orientation.
  double theta1() const { return theta1_ / normalization_; }
  /// Mass of (ξ, y-1] (Equation 9 with the γ-consistent coefficient,
  /// normalized); zero when ξ = y-1.
  double theta2() const { return theta2_ / normalization_; }
  /// Mass of the right tail [y+1, ∞) (Equation 10, normalized).
  double theta3() const { return theta3_ / normalization_; }
  /// Mass of the central interval (y-1, y+1), in closed form.
  double middle_mass() const { return middle_ / normalization_; }
  /// Total mass of the *unnormalized* Equation 6 density; equals
  /// 1 + O(1/λ'²) (see the reproduction notes above).
  double normalization() const { return normalization_; }
  /// Rejection envelope over the middle interval (Equation 11), for the
  /// unnormalized density (Proposition 4: raw f < φ there).
  double phi() const;
  /// ξ = min{μ, y-1} in canonical orientation.
  double xi() const { return xi_; }

  /// Draws one sample (Figure 3).
  double Sample(BitGen& gen) const;

  double mu() const;
  double y() const;
  double lambda() const { return lambda_; }
  double lambda_prime() const { return lambda_prime_; }

 private:
  NoiseDownDistribution() = default;

  // Log of the unnormalized Equation 6 density in canonical orientation
  // (inputs already negated if inverted_).
  double CanonicalLogPdf(double y_prime) const;

  // Closed-form mass of the unnormalized density over (y-1, y+1).
  double MiddleMass() const;

  // Canonical parameters satisfying mu_ <= y_.
  double mu_ = 0;
  double y_ = 0;
  double lambda_ = 0;
  double lambda_prime_ = 0;
  bool inverted_ = false;  // true when the caller's mu > y

  double xi_ = 0;
  double theta1_ = 0;  // unnormalized segment masses
  double theta2_ = 0;
  double theta3_ = 0;
  double middle_ = 0;
  double normalization_ = 1;
  double log_phi_ = 0;
};

/// The NoiseDown(μ, y, λ, λ') primitive of Figure 3: resamples a noisy
/// answer for a unit-sensitivity count query with true answer `mu`,
/// conditioned on the previous answer `y` at scale `lambda`, producing an
/// answer at the reduced scale `lambda_prime`.
Result<double> NoiseDown(double mu, double y, double lambda,
                         double lambda_prime, BitGen& gen);

/// Extension for queries whose per-tuple sensitivity is `step` rather than
/// 1: rescales the problem to unit step, applies NoiseDown, and scales
/// back. Equivalent to running Figure 3 with the ±1 shifts replaced by
/// ±step. Requires step > 0.
Result<double> NoiseDownWithStep(double mu, double y, double lambda,
                                 double lambda_prime, double step,
                                 BitGen& gen);

}  // namespace ireduct

#endif  // IREDUCT_DP_NOISE_DOWN_H_
