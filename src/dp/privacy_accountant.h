// Sequential-composition privacy ledger.
//
// Differentially private algorithms compose: running mechanisms with costs
// ε_1, ..., ε_k on the same data is (Σ ε_i)-differentially private (McSherry
// & Talwar). The accountant tracks a fixed budget and refuses charges that
// would exceed it, and keeps a labelled ledger for audit/reporting.
#ifndef IREDUCT_DP_PRIVACY_ACCOUNTANT_H_
#define IREDUCT_DP_PRIVACY_ACCOUNTANT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ireduct {

class LedgerJournal;

/// One recorded privacy expenditure.
struct PrivacyCharge {
  std::string label;
  double epsilon = 0;
};

/// Tracks cumulative ε expenditure against a fixed budget.
class PrivacyAccountant {
 public:
  /// Creates an accountant with the given total ε budget (must be > 0).
  static Result<PrivacyAccountant> Create(double epsilon_budget);

  /// Rebuilds an accountant from a recovered ledger: every charge is
  /// admitted as already spent, in order. Unlike Charge, recovery does not
  /// enforce the budget — a conservatively recovered journal (torn grant
  /// counted as spent) may legitimately exceed it, and under-reporting the
  /// recovered spend would be the real correctness bug. Individual charges
  /// must still be positive finite.
  static Result<PrivacyAccountant> Restore(double epsilon_budget,
                                           std::vector<PrivacyCharge> ledger);

  /// Records a charge of `epsilon` under `label`. Fails with
  /// kPrivacyBudgetExceeded (and records nothing) if it would overspend,
  /// and with kInvalidArgument for non-positive or non-finite charges.
  /// With a journal attached the charge is made durable *first*: a journal
  /// append failure refuses the charge and leaves the accountant
  /// unchanged — no grant is ever visible without a durable record of it.
  /// The failed journal poisons itself, so every later Charge through it
  /// is refused (kFailedPrecondition) until the journal file is recovered
  /// and compacted.
  Status Charge(std::string label, double epsilon);

  /// Attaches a write-ahead journal (borrowed; must outlive the
  /// accountant, or be detached with nullptr). Every subsequent Charge is
  /// journaled-then-admitted.
  void AttachJournal(LedgerJournal* journal) { journal_ = journal; }
  bool has_journal() const { return journal_ != nullptr; }

  /// True if a further charge of `epsilon` would fit in the budget.
  bool CanAfford(double epsilon) const;

  double budget() const { return budget_; }
  double spent() const { return spent_; }
  double remaining() const { return budget_ - spent_; }
  const std::vector<PrivacyCharge>& ledger() const { return ledger_; }

  /// Deterministic JSON export of the ledger for audit pipelines and trace
  /// attachments: fixed field order
  ///   {"budget":B,"spent":S,"remaining":R,"charges":[
  ///     {"label":L,"epsilon":E}, ...]}
  /// with charges in the order they were admitted and doubles rendered via
  /// shortest round-trip, so equal ledgers export byte-identical JSON.
  /// `remaining` is clamped at 0: the boundary-slack admission rule can
  /// push spent a hair past budget, and the export must never advertise a
  /// negative balance.
  std::string ExportLedgerJson() const;

 private:
  explicit PrivacyAccountant(double budget) : budget_(budget) {}

  double budget_;
  double spent_ = 0;
  std::vector<PrivacyCharge> ledger_;
  LedgerJournal* journal_ = nullptr;  // borrowed write-ahead journal
};

}  // namespace ireduct

#endif  // IREDUCT_DP_PRIVACY_ACCOUNTANT_H_
