// Batch count-query workloads.
//
// The paper's setting (Section 2.1): a sequence Q of m queries, each mapping
// the dataset to a real number, answered with per-query Laplace scales
// Λ = [λ1..λm]. Privacy is governed by the generalized sensitivity
// GS(Q, Λ) = max over neighboring datasets of Σ_i |Δq_i| / λ_i (Definition 4).
//
// All of the paper's mechanisms assign a *uniform* scale to each group of
// related queries (e.g. all cells of one marginal — see Section 5.3, which
// shows this is the right tradeoff because a marginal's sensitivity depends
// only on its smallest scale). We therefore model a workload as a sequence of
// true answers partitioned into contiguous QueryGroups; each group g carries
// a sensitivity coefficient c_g so that
//   GS(Λ) = Σ_g c_g / λ_g
// when every query in g uses scale λ_g. For a marginal, c_g = 2 (one tuple
// change moves two cells by one each); for an independent count query in its
// own group, c_g is that query's per-tuple sensitivity.
#ifndef IREDUCT_DP_WORKLOAD_H_
#define IREDUCT_DP_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ireduct {

class LinearWorkload;  // queries/linear_workload.h

/// A contiguous run of queries that share one noise scale and jointly
/// contribute `sensitivity_coeff / scale` to the generalized sensitivity.
struct QueryGroup {
  std::string name;
  /// Query index range [begin, end) into the workload's answer vector.
  uint32_t begin = 0;
  uint32_t end = 0;
  /// Max L1 change of this group's answers when one tuple changes.
  double sensitivity_coeff = 1.0;

  uint32_t size() const { return end - begin; }
};

/// An immutable batch of count queries with their (private!) true answers
/// and group structure. Mechanisms read `true_answers()` only through the
/// noise-injection primitives; published outputs never expose it directly.
class Workload {
 public:
  /// Validates and builds a workload. Groups must tile [0, num answers)
  /// contiguously in order and have positive sensitivity coefficients.
  static Result<Workload> Create(std::vector<double> true_answers,
                                 std::vector<QueryGroup> groups);

  /// Convenience: each query forms its own group with the given coefficient
  /// (the generic batch-query setting of Sections 2–4).
  static Result<Workload> PerQuery(std::vector<double> true_answers,
                                   double sensitivity_coeff = 1.0);

  /// Exact generalized sensitivity for per-group scales, replacing the
  /// default additive formula. Must be positive, monotone non-increasing
  /// in every scale, and +infinity for non-positive scales.
  using SensitivityFn = std::function<double(std::span<const double>)>;

  /// Like Create, but GS(Λ) is computed by `sensitivity` instead of
  /// Σ c_g/λ_g. Use when the additive bound is loose — e.g. groups over
  /// *disjoint* cells, where one moved tuple touches at most two groups
  /// and the exact GS is max over group pairs (see
  /// queries/range_workload.h's DisjointHistogramWorkload).
  static Result<Workload> CreateWithSensitivityFn(
      std::vector<double> true_answers, std::vector<QueryGroup> groups,
      SensitivityFn sensitivity);

  size_t num_queries() const { return true_answers_.size(); }
  size_t num_groups() const { return groups_.size(); }

  /// True when GS is computed by a caller-supplied SensitivityFn rather
  /// than the additive Σ c_g/λ_g formula. Incremental GS accounting
  /// (dp/incremental_sensitivity.h) must fall back to full recomputes for
  /// such workloads because a custom GS need not decompose per group.
  bool has_custom_sensitivity() const {
    return static_cast<bool>(custom_sensitivity_);
  }
  const QueryGroup& group(size_t g) const { return groups_[g]; }
  std::span<const QueryGroup> groups() const { return groups_; }

  /// Group index owning query `i`.
  size_t group_of(size_t i) const { return group_of_[i]; }

  double true_answer(size_t i) const { return true_answers_[i]; }
  std::span<const double> true_answers() const { return true_answers_; }

  /// Sensitivity S(Q) (Definition 3): GS with all scales equal to 1,
  /// i.e. the sum of the group coefficients.
  double Sensitivity() const;

  /// Generalized sensitivity GS(Q, Λ) (Definition 4) for per-group scales.
  /// Scales must all be positive; non-positive scales yield +infinity.
  double GeneralizedSensitivity(std::span<const double> group_scales) const;
  double GeneralizedSensitivity(
      std::initializer_list<double> group_scales) const {
    return GeneralizedSensitivity(
        std::span<const double>(group_scales.begin(), group_scales.size()));
  }

  /// Expands per-group scales to a per-query scale vector.
  std::vector<double> PerQueryScales(
      std::span<const double> group_scales) const;
  /// Same expansion into caller-owned storage (e.g. arena scratch);
  /// out.size() must equal num_queries().
  void PerQueryScalesInto(std::span<const double> group_scales,
                          std::span<double> out) const;
  std::vector<double> PerQueryScales(
      std::initializer_list<double> group_scales) const {
    return PerQueryScales(
        std::span<const double>(group_scales.begin(), group_scales.size()));
  }

  /// Optional linear-query view of this workload: a sparse matrix W over a
  /// domain histogram whose product reproduces `true_answers()` (see
  /// queries/linear_workload.h). Strategy-based mechanisms consult it to
  /// noise the histogram domain instead of the answer vector; every other
  /// mechanism ignores it. Null when no view is attached. The dp/ layer
  /// only stores the pointer — it never dereferences it — so no dependency
  /// on queries/ is introduced.
  void SetLinear(std::shared_ptr<const LinearWorkload> linear) {
    linear_ = std::move(linear);
  }
  const std::shared_ptr<const LinearWorkload>& linear() const {
    return linear_;
  }

 private:
  Workload(std::vector<double> true_answers, std::vector<QueryGroup> groups);

  std::vector<double> true_answers_;
  std::vector<QueryGroup> groups_;
  std::vector<uint32_t> group_of_;
  SensitivityFn custom_sensitivity_;  // null: additive Σ c_g/λ_g
  std::shared_ptr<const LinearWorkload> linear_;  // null: no linear view
};

}  // namespace ireduct

#endif  // IREDUCT_DP_WORKLOAD_H_
