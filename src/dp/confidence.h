// Confidence intervals for Laplace-noised releases.
//
// Publishing a noisy answer without its uncertainty invites
// over-interpretation; since every mechanism here reports its noise
// scales, exact Laplace confidence intervals are free. (These are
// post-processing of published values and scales only — no privacy cost.)
#ifndef IREDUCT_DP_CONFIDENCE_H_
#define IREDUCT_DP_CONFIDENCE_H_

#include <vector>

#include "algorithms/mechanism.h"
#include "common/result.h"
#include "dp/workload.h"

namespace ireduct {

/// Quantile function of the Laplace distribution with location `mu` and
/// scale `b` at probability p ∈ (0, 1).
double LaplaceQuantile(double p, double mu, double b);

/// A two-sided interval.
struct ConfidenceInterval {
  double lo = 0;
  double hi = 0;

  double width() const { return hi - lo; }
  bool Contains(double x) const { return lo <= x && x <= hi; }
};

/// Exact central interval covering a Laplace(answer, scale) posterior at
/// the given confidence level ∈ (0, 1):
/// answer ± scale·ln(1/(1-level)).
Result<ConfidenceInterval> LaplaceConfidenceInterval(double answer,
                                                     double scale,
                                                     double level);

/// Per-query intervals for a mechanism output, using each query's group
/// scale. The output must come from a Laplace-based mechanism on
/// `workload` (Dwork/Oracle/TwoPhase/iReduct/iResamp all qualify; the
/// combined-estimate mechanisms' intervals are conservative).
Result<std::vector<ConfidenceInterval>> ConfidenceIntervals(
    const Workload& workload, const MechanismOutput& output, double level);

}  // namespace ireduct

#endif  // IREDUCT_DP_CONFIDENCE_H_
