#include "dp/confidence.h"

#include <cmath>

#include "common/logging.h"

namespace ireduct {

double LaplaceQuantile(double p, double mu, double b) {
  IREDUCT_DCHECK(p > 0 && p < 1);
  IREDUCT_DCHECK(b > 0);
  // Inverse CDF: mu - b·sgn(p - 1/2)·ln(1 - 2|p - 1/2|).
  const double q = p - 0.5;
  const double sign = (q >= 0) ? 1.0 : -1.0;
  return mu - b * sign * std::log1p(-2 * std::fabs(q));
}

Result<ConfidenceInterval> LaplaceConfidenceInterval(double answer,
                                                     double scale,
                                                     double level) {
  if (!(level > 0) || !(level < 1)) {
    return Status::InvalidArgument("confidence level must be in (0, 1)");
  }
  if (!(scale > 0) || !std::isfinite(scale)) {
    return Status::InvalidArgument("scale must be positive finite");
  }
  const double half_width = -scale * std::log(1 - level);
  return ConfidenceInterval{answer - half_width, answer + half_width};
}

Result<std::vector<ConfidenceInterval>> ConfidenceIntervals(
    const Workload& workload, const MechanismOutput& output, double level) {
  if (output.answers.size() != workload.num_queries() ||
      output.group_scales.size() != workload.num_groups()) {
    return Status::InvalidArgument("output does not match the workload");
  }
  std::vector<ConfidenceInterval> intervals;
  intervals.reserve(output.answers.size());
  for (size_t i = 0; i < output.answers.size(); ++i) {
    IREDUCT_ASSIGN_OR_RETURN(
        ConfidenceInterval interval,
        LaplaceConfidenceInterval(output.answers[i],
                                  output.group_scales[workload.group_of(i)],
                                  level));
    intervals.push_back(interval);
  }
  return intervals;
}

}  // namespace ireduct
