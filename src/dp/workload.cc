#include "dp/workload.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/numeric.h"

namespace ireduct {

Result<Workload> Workload::Create(std::vector<double> true_answers,
                                  std::vector<QueryGroup> groups) {
  if (groups.empty()) {
    return Status::InvalidArgument("workload requires at least one group");
  }
  uint32_t expected_begin = 0;
  for (const QueryGroup& g : groups) {
    if (g.begin != expected_begin) {
      return Status::InvalidArgument("groups must tile queries contiguously");
    }
    if (g.end <= g.begin) {
      return Status::InvalidArgument("group '" + g.name + "' is empty");
    }
    if (!(g.sensitivity_coeff > 0) || !std::isfinite(g.sensitivity_coeff)) {
      return Status::InvalidArgument("group '" + g.name +
                                     "' needs a positive sensitivity");
    }
    expected_begin = g.end;
  }
  if (expected_begin != true_answers.size()) {
    return Status::InvalidArgument("groups do not cover all queries");
  }
  for (double a : true_answers) {
    if (!std::isfinite(a)) {
      return Status::InvalidArgument("true answers must be finite");
    }
  }
  return Workload(std::move(true_answers), std::move(groups));
}

Result<Workload> Workload::CreateWithSensitivityFn(
    std::vector<double> true_answers, std::vector<QueryGroup> groups,
    SensitivityFn sensitivity) {
  if (!sensitivity) {
    return Status::InvalidArgument("sensitivity function must be set");
  }
  IREDUCT_ASSIGN_OR_RETURN(
      Workload workload,
      Create(std::move(true_answers), std::move(groups)));
  workload.custom_sensitivity_ = std::move(sensitivity);
  return workload;
}

Result<Workload> Workload::PerQuery(std::vector<double> true_answers,
                                    double sensitivity_coeff) {
  std::vector<QueryGroup> groups;
  groups.reserve(true_answers.size());
  for (uint32_t i = 0; i < true_answers.size(); ++i) {
    groups.push_back(QueryGroup{"q" + std::to_string(i), i, i + 1,
                                sensitivity_coeff});
  }
  return Create(std::move(true_answers), std::move(groups));
}

Workload::Workload(std::vector<double> true_answers,
                   std::vector<QueryGroup> groups)
    : true_answers_(std::move(true_answers)), groups_(std::move(groups)) {
  group_of_.resize(true_answers_.size());
  for (uint32_t g = 0; g < groups_.size(); ++g) {
    for (uint32_t i = groups_[g].begin; i < groups_[g].end; ++i) {
      group_of_[i] = g;
    }
  }
}

double Workload::Sensitivity() const {
  if (custom_sensitivity_) {
    // S(Q) = GS at unit scales (Definitions 3 vs 4).
    const std::vector<double> unit(groups_.size(), 1.0);
    return custom_sensitivity_(unit);
  }
  KahanSum acc;
  for (const QueryGroup& g : groups_) acc.Add(g.sensitivity_coeff);
  return acc.value();
}

double Workload::GeneralizedSensitivity(
    std::span<const double> group_scales) const {
  IREDUCT_DCHECK(group_scales.size() == groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (!(group_scales[g] > 0)) {
      return std::numeric_limits<double>::infinity();
    }
  }
  if (custom_sensitivity_) return custom_sensitivity_(group_scales);
  KahanSum acc;
  for (size_t g = 0; g < groups_.size(); ++g) {
    acc.Add(groups_[g].sensitivity_coeff / group_scales[g]);
  }
  return acc.value();
}

std::vector<double> Workload::PerQueryScales(
    std::span<const double> group_scales) const {
  std::vector<double> scales(num_queries());
  PerQueryScalesInto(group_scales, scales);
  return scales;
}

void Workload::PerQueryScalesInto(std::span<const double> group_scales,
                                  std::span<double> out) const {
  IREDUCT_DCHECK(group_scales.size() == groups_.size());
  IREDUCT_DCHECK(out.size() == num_queries());
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (uint32_t i = groups_[g].begin; i < groups_[g].end; ++i) {
      out[i] = group_scales[g];
    }
  }
}

}  // namespace ireduct
