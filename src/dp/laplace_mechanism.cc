#include "dp/laplace_mechanism.h"

#include <cmath>

#include "common/arena.h"

namespace ireduct {

namespace {

// Below this size the per-element sampler is both faster (no substream
// setup) and keeps the historical draw sequence; at or above it the batch
// kernels win and the release switches to the four-substream batch stream
// (see BitGen::LaplaceBatch — still deterministic, just a different
// function of the seed).
constexpr size_t kBatchThreshold = 16;

// Round scratch for the noise staging buffers. Call-local lifetime only:
// every allocation below is dead by return, so Reset-at-entry is safe.
Arena& ScratchArena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace

Result<std::vector<double>> AddLaplaceNoise(std::span<const double> values,
                                            std::span<const double> scales,
                                            BitGen& gen) {
  if (values.size() != scales.size()) {
    return Status::InvalidArgument("values/scales size mismatch");
  }
  for (double s : scales) {
    if (!(s > 0) || !std::isfinite(s)) {
      return Status::InvalidArgument("noise scales must be positive finite");
    }
  }
  const size_t n = values.size();
  std::vector<double> noisy(n);
  if (n >= kBatchThreshold) {
    gen.LaplaceBatch(scales, noisy);
    for (size_t i = 0; i < n; ++i) noisy[i] += values[i];
  } else {
    for (size_t i = 0; i < n; ++i) {
      noisy[i] = values[i] + gen.Laplace(scales[i]);
    }
  }
  return noisy;
}

Result<std::vector<double>> LaplaceNoise(const Workload& workload,
                                         std::span<const double> group_scales,
                                         BitGen& gen) {
  if (group_scales.size() != workload.num_groups()) {
    return Status::InvalidArgument("one scale per group required");
  }
  // Stage the per-query expansion in the arena instead of allocating a
  // fresh vector every NoiseDown round.
  Arena& arena = ScratchArena();
  arena.Reset();
  std::span<double> per_query =
      arena.AllocZeroed<double>(workload.num_queries());
  workload.PerQueryScalesInto(group_scales, per_query);
  return AddLaplaceNoise(workload.true_answers(), per_query, gen);
}

}  // namespace ireduct
