#include "dp/laplace_mechanism.h"

#include <cmath>

namespace ireduct {

Result<std::vector<double>> AddLaplaceNoise(std::span<const double> values,
                                            std::span<const double> scales,
                                            BitGen& gen) {
  if (values.size() != scales.size()) {
    return Status::InvalidArgument("values/scales size mismatch");
  }
  for (double s : scales) {
    if (!(s > 0) || !std::isfinite(s)) {
      return Status::InvalidArgument("noise scales must be positive finite");
    }
  }
  std::vector<double> noisy(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    noisy[i] = values[i] + gen.Laplace(scales[i]);
  }
  return noisy;
}

Result<std::vector<double>> LaplaceNoise(const Workload& workload,
                                         std::span<const double> group_scales,
                                         BitGen& gen) {
  if (group_scales.size() != workload.num_groups()) {
    return Status::InvalidArgument("one scale per group required");
  }
  const std::vector<double> per_query = workload.PerQueryScales(group_scales);
  return AddLaplaceNoise(workload.true_answers(), per_query, gen);
}

}  // namespace ireduct
