#include "dp/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/fault.h"
#include "dp/ledger_journal.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace ireduct {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

void HashBytes(uint64_t* h, const void* data, size_t size) {
  constexpr uint64_t kFnvPrime = 1099511628211ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashU64(uint64_t* h, uint64_t v) { HashBytes(h, &v, sizeof(v)); }

void HashDouble(uint64_t* h, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  HashU64(h, bits);
}

Result<uint64_t> ParseU64Field(const obs::JsonValue& doc,
                               std::string_view key) {
  const obs::JsonValue* field = doc.Find(key);
  if (field == nullptr || !field->is(obs::JsonValue::Kind::kNumber)) {
    return Status::IoError("checkpoint is missing numeric '" +
                           std::string(key) + "'");
  }
  char* end = nullptr;
  errno = 0;
  const uint64_t value = std::strtoull(field->text.c_str(), &end, 10);
  if (errno != 0 || end != field->text.c_str() + field->text.size()) {
    return Status::IoError("checkpoint has malformed integer '" +
                           std::string(key) + "'");
  }
  return value;
}

// Exact double recovery: the writer renders shortest round-trip, so
// strtod on the raw token restores the bit pattern.
Result<double> TokenToDouble(const obs::JsonValue& field,
                             std::string_view key) {
  if (!field.is(obs::JsonValue::Kind::kNumber)) {
    return Status::IoError("checkpoint field '" + std::string(key) +
                           "' is not a number");
  }
  char* end = nullptr;
  const double value = std::strtod(field.text.c_str(), &end);
  if (end != field.text.c_str() + field.text.size()) {
    return Status::IoError("checkpoint has malformed number in '" +
                           std::string(key) + "'");
  }
  return value;
}

Result<double> ParseDoubleField(const obs::JsonValue& doc,
                                std::string_view key) {
  const obs::JsonValue* field = doc.Find(key);
  if (field == nullptr) {
    return Status::IoError("checkpoint is missing '" + std::string(key) +
                           "'");
  }
  return TokenToDouble(*field, key);
}

Result<std::vector<double>> ParseDoubleArray(const obs::JsonValue& doc,
                                             std::string_view key) {
  const obs::JsonValue* field = doc.Find(key);
  if (field == nullptr || !field->is(obs::JsonValue::Kind::kArray)) {
    return Status::IoError("checkpoint is missing array '" +
                           std::string(key) + "'");
  }
  std::vector<double> out;
  out.reserve(field->array.size());
  for (const obs::JsonValue& element : field->array) {
    IREDUCT_ASSIGN_OR_RETURN(const double value,
                             TokenToDouble(element, key));
    out.push_back(value);
  }
  return out;
}

void WriteDoubleArray(obs::JsonWriter* json, std::string_view key,
                      const std::vector<double>& values) {
  json->Key(key);
  json->BeginArray();
  for (const double v : values) json->Double(v);
  json->EndArray();
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("writing checkpoint", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

uint64_t FingerprintWorkload(const Workload& workload) {
  uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  HashU64(&h, workload.num_queries());
  HashU64(&h, workload.num_groups());
  HashU64(&h, workload.has_custom_sensitivity() ? 1 : 0);
  for (const QueryGroup& group : workload.groups()) {
    HashU64(&h, group.begin);
    HashU64(&h, group.end);
    HashDouble(&h, group.sensitivity_coeff);
    HashU64(&h, group.name.size());
    HashBytes(&h, group.name.data(), group.name.size());
  }
  return h;
}

Status ValidateResume(const RunCheckpoint& checkpoint,
                      std::string_view algorithm,
                      const Workload& workload) {
  if (checkpoint.algorithm != algorithm) {
    return Status::InvalidArgument(
        "checkpoint was written by '" + checkpoint.algorithm +
        "', cannot resume '" + std::string(algorithm) + "'");
  }
  if (checkpoint.workload_fingerprint != FingerprintWorkload(workload)) {
    return Status::InvalidArgument(
        "checkpoint workload fingerprint does not match this workload; "
        "resuming against different data or structure is refused");
  }
  if (checkpoint.answers.size() != workload.num_queries() ||
      checkpoint.group_scales.size() != workload.num_groups() ||
      checkpoint.active.size() != workload.num_groups()) {
    return Status::InvalidArgument(
        "checkpoint state vectors do not match the workload's dimensions");
  }
  if (algorithm == "iresamp" &&
      (checkpoint.nominal_scales.size() != workload.num_groups() ||
       checkpoint.weighted_sum.size() != workload.num_queries() ||
       checkpoint.weight.size() != workload.num_queries())) {
    return Status::InvalidArgument(
        "checkpoint lacks complete iresamp accumulator state");
  }
  return Status::OK();
}

std::string SerializeCheckpoint(const RunCheckpoint& checkpoint) {
  std::string body;
  obs::JsonWriter json(&body);
  json.BeginObject();
  json.KV("type", "checkpoint");
  json.KV("version", RunCheckpoint::kVersion);
  json.KV("algorithm", checkpoint.algorithm);
  json.KV("workload", checkpoint.workload_fingerprint);
  json.KV("round", checkpoint.round);
  json.KV("iterations", checkpoint.iterations);
  json.KV("resample_calls", checkpoint.resample_calls);
  json.KV("epsilon_spent", checkpoint.epsilon_spent);
  json.Key("rng");
  json.BeginArray();
  for (const uint64_t word : checkpoint.rng_state) json.UInt(word);
  json.EndArray();
  json.Key("gs");
  json.BeginObject();
  json.KV("value", checkpoint.gs.value);
  json.KV("compensation", checkpoint.gs.compensation);
  json.KV("commits_since_resync", checkpoint.gs.commits_since_resync);
  json.EndObject();
  WriteDoubleArray(&json, "answers", checkpoint.answers);
  WriteDoubleArray(&json, "group_scales", checkpoint.group_scales);
  json.Key("active");
  json.BeginArray();
  for (const uint8_t a : checkpoint.active) json.UInt(a != 0 ? 1 : 0);
  json.EndArray();
  WriteDoubleArray(&json, "nominal_scales", checkpoint.nominal_scales);
  WriteDoubleArray(&json, "weighted_sum", checkpoint.weighted_sum);
  WriteDoubleArray(&json, "weight", checkpoint.weight);
  json.EndObject();
  return SealJsonRecord(body);
}

Result<RunCheckpoint> ParseCheckpoint(std::string_view text) {
  std::string body;
  if (!UnsealJsonRecord(text, &body)) {
    return Status::IoError(
        "checkpoint record failed its CRC check (truncated or corrupt)");
  }
  IREDUCT_ASSIGN_OR_RETURN(const obs::JsonValue doc, obs::JsonParse(body));
  const obs::JsonValue* type = doc.Find("type");
  if (type == nullptr || !type->is(obs::JsonValue::Kind::kString) ||
      type->text != "checkpoint") {
    return Status::IoError("record is not a checkpoint");
  }
  IREDUCT_ASSIGN_OR_RETURN(const uint64_t version,
                           ParseU64Field(doc, "version"));
  if (version != RunCheckpoint::kVersion) {
    return Status::IoError("unsupported checkpoint version " +
                           std::to_string(version));
  }

  RunCheckpoint out;
  const obs::JsonValue* algorithm = doc.Find("algorithm");
  if (algorithm == nullptr ||
      !algorithm->is(obs::JsonValue::Kind::kString)) {
    return Status::IoError("checkpoint is missing 'algorithm'");
  }
  out.algorithm = algorithm->text;
  IREDUCT_ASSIGN_OR_RETURN(out.workload_fingerprint,
                           ParseU64Field(doc, "workload"));
  IREDUCT_ASSIGN_OR_RETURN(out.round, ParseU64Field(doc, "round"));
  IREDUCT_ASSIGN_OR_RETURN(out.iterations,
                           ParseU64Field(doc, "iterations"));
  IREDUCT_ASSIGN_OR_RETURN(out.resample_calls,
                           ParseU64Field(doc, "resample_calls"));
  IREDUCT_ASSIGN_OR_RETURN(out.epsilon_spent,
                           ParseDoubleField(doc, "epsilon_spent"));

  const obs::JsonValue* rng = doc.Find("rng");
  if (rng == nullptr || !rng->is(obs::JsonValue::Kind::kArray) ||
      rng->array.size() != out.rng_state.size()) {
    return Status::IoError("checkpoint 'rng' must be a 4-word array");
  }
  for (size_t i = 0; i < out.rng_state.size(); ++i) {
    const obs::JsonValue& word = rng->array[i];
    if (!word.is(obs::JsonValue::Kind::kNumber)) {
      return Status::IoError("checkpoint 'rng' words must be integers");
    }
    char* end = nullptr;
    errno = 0;
    out.rng_state[i] = std::strtoull(word.text.c_str(), &end, 10);
    if (errno != 0 || end != word.text.c_str() + word.text.size()) {
      return Status::IoError("checkpoint has a malformed 'rng' word");
    }
  }

  const obs::JsonValue* gs = doc.Find("gs");
  if (gs == nullptr || !gs->is(obs::JsonValue::Kind::kObject)) {
    return Status::IoError("checkpoint is missing 'gs'");
  }
  IREDUCT_ASSIGN_OR_RETURN(out.gs.value, ParseDoubleField(*gs, "value"));
  IREDUCT_ASSIGN_OR_RETURN(out.gs.compensation,
                           ParseDoubleField(*gs, "compensation"));
  IREDUCT_ASSIGN_OR_RETURN(out.gs.commits_since_resync,
                           ParseU64Field(*gs, "commits_since_resync"));

  IREDUCT_ASSIGN_OR_RETURN(out.answers, ParseDoubleArray(doc, "answers"));
  IREDUCT_ASSIGN_OR_RETURN(out.group_scales,
                           ParseDoubleArray(doc, "group_scales"));
  const obs::JsonValue* active = doc.Find("active");
  if (active == nullptr || !active->is(obs::JsonValue::Kind::kArray)) {
    return Status::IoError("checkpoint is missing array 'active'");
  }
  out.active.reserve(active->array.size());
  for (const obs::JsonValue& flag : active->array) {
    if (!flag.is(obs::JsonValue::Kind::kNumber)) {
      return Status::IoError("checkpoint 'active' flags must be numbers");
    }
    out.active.push_back(flag.number != 0 ? 1 : 0);
  }
  IREDUCT_ASSIGN_OR_RETURN(out.nominal_scales,
                           ParseDoubleArray(doc, "nominal_scales"));
  IREDUCT_ASSIGN_OR_RETURN(out.weighted_sum,
                           ParseDoubleArray(doc, "weighted_sum"));
  IREDUCT_ASSIGN_OR_RETURN(out.weight, ParseDoubleArray(doc, "weight"));

  if (out.group_scales.size() != out.active.size()) {
    return Status::IoError(
        "checkpoint 'group_scales' and 'active' sizes disagree");
  }
  return out;
}

Status FileCheckpointSink::Write(const RunCheckpoint& checkpoint) {
  const auto serialize_start = std::chrono::steady_clock::now();
  std::string record = SerializeCheckpoint(checkpoint);
  record.push_back('\n');
  const auto write_start = std::chrono::steady_clock::now();
  IREDUCT_METRIC_OBSERVE(
      "checkpoint.serialize_seconds",
      std::chrono::duration<double>(write_start - serialize_start).count());
  IREDUCT_METRIC_OBSERVE_BUCKETS("checkpoint.bytes",
                                 static_cast<double>(record.size()),
                                 obs::ByteBucketBounds());

  const FaultDecision fault =
      FaultInjector::Global().Hit("checkpoint.write");
  if (fault.action == FaultAction::kFail) {
    return Status::IoError("injected fault: checkpoint write failed");
  }
  if (fault.action == FaultAction::kTruncate) {
    // Simulate a corrupt checkpoint reaching the final path: a truncated
    // record is renamed into place and the write reports failure.
    record.resize(std::min<size_t>(fault.truncate_bytes, record.size()));
  }

  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("creating checkpoint", tmp));
  }
  Status write_status = WriteAll(fd, record, tmp);
  if (write_status.ok() && ::fsync(fd) != 0) {
    write_status = Status::IoError(ErrnoMessage("fsyncing checkpoint", tmp));
  }
  ::close(fd);
  IREDUCT_RETURN_NOT_OK(write_status);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IoError(ErrnoMessage("renaming checkpoint into", path_));
  }
  IREDUCT_RETURN_NOT_OK(SyncParentDir(path_));
  if (fault.action == FaultAction::kTruncate) {
    return Status::IoError("injected fault: checkpoint write truncated");
  }
  IREDUCT_METRIC_COUNT("checkpoint.writes", 1);
  IREDUCT_METRIC_GAUGE_SET("checkpoint.last_round",
                           static_cast<double>(checkpoint.round));
  IREDUCT_METRIC_OBSERVE(
      "checkpoint.write_seconds",
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    write_start)
          .count());
  if (obs::EventLog* events = obs::EventLog::Get()) {
    events->Emit("checkpoint.write",
                 {{"round", checkpoint.round},
                  {"bytes", static_cast<uint64_t>(record.size())}});
  }
  return Status::OK();
}

Result<RunCheckpoint> FileCheckpointSink::Load(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("opening checkpoint", path));
  }
  std::string contents;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status =
          Status::IoError(ErrnoMessage("reading checkpoint", path));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    contents.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  while (!contents.empty() &&
         (contents.back() == '\n' || contents.back() == '\r')) {
    contents.pop_back();
  }
  Result<RunCheckpoint> parsed = ParseCheckpoint(contents);
  if (!parsed.ok()) {
    return Status::IoError("checkpoint '" + path +
                           "' is unusable: " + parsed.status().message());
  }
  return parsed;
}

Status JournalingCheckpointSink::Write(const RunCheckpoint& checkpoint) {
  // Ledger before checkpoint: the growth since the last durable boundary
  // is journaled first. Re-executed boundaries after a resume compute a
  // delta ≤ 0 (the recovered spend already covers them) and charge nothing,
  // so interrupted-and-resumed runs end with the same ledger total as
  // uninterrupted ones.
  const double delta = checkpoint.epsilon_spent - accountant_->spent();
  if (delta > 0) {
    IREDUCT_RETURN_NOT_OK(accountant_->Charge(
        checkpoint.algorithm + " checkpoint round " +
            std::to_string(checkpoint.round),
        delta));
  }
  return inner_->Write(checkpoint);
}

}  // namespace ireduct
