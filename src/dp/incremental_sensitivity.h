// Incremental generalized-sensitivity accounting for the iReduct /
// iResamp refinement loops.
//
// The Figure 4 loop changes exactly one group scale per step, yet the seed
// implementation recomputed GS(Λ) = Σ_g c_g/λ_g from scratch — O(m) per
// iteration and the dominant cost at large m. For additive workloads the
// effect of moving group g from λ to λ' is exactly c_g·(1/λ' − 1/λ), so
// this tracker maintains GS as a running Kahan-compensated sum and answers
// a trial move in O(1). Two safeguards keep it honest:
//
//  * Drift control: every `resync_interval` committed moves (default 1024)
//    the running value is replaced by a full Kahan recompute over the
//    current scales, bounding accumulated round-off far below the 1e-9
//    relative envelope the property tests assert.
//  * Exactness on demand: TrialExact()/Resync() evaluate the workload's own
//    GeneralizedSensitivity — bit-identical to what a non-incremental loop
//    would compute — for boundary decisions (admit vs retire within a guard
//    band of ε) and for the final reported epsilon_spent.
//
// Workloads with a custom SensitivityFn (Workload::CreateWithSensitivityFn)
// need not decompose additively, so for them every query transparently
// falls back to a full recompute; callers do not change.
#ifndef IREDUCT_DP_INCREMENTAL_SENSITIVITY_H_
#define IREDUCT_DP_INCREMENTAL_SENSITIVITY_H_

#include <cstddef>
#include <span>
#include <vector>

#include "dp/workload.h"

namespace ireduct {

class IncrementalSensitivity {
 public:
  /// Full recompute cadence that keeps drift ≪ 1e-9 relative while costing
  /// O(m/1024) amortized per committed move.
  static constexpr size_t kDefaultResyncInterval = 1024;

  /// Snapshots `scales` (one per group) and computes the initial GS with a
  /// full pass. The workload must outlive the tracker.
  IncrementalSensitivity(const Workload& workload,
                         std::span<const double> scales,
                         size_t resync_interval = kDefaultResyncInterval);

  /// False when the workload carries a custom SensitivityFn and every
  /// query is a full recompute.
  bool incremental() const { return incremental_; }

  /// Current GS at the tracked scales (running compensated value on the
  /// incremental path; exact on the fallback path).
  double value() const { return value_; }

  /// GS with group g's scale moved to `new_scale`, without committing.
  /// O(1) on the incremental path; +infinity for non-positive scales.
  double Trial(size_t g, double new_scale);

  /// Like Trial but always a full recompute through the workload —
  /// bit-identical to Workload::GeneralizedSensitivity on the trial scale
  /// vector. Use for decisions within a guard band of the budget.
  double TrialExact(size_t g, double new_scale);

  /// Applies the move: records the new scale and folds the GS delta into
  /// the running sum (or recomputes, on the fallback path). Triggers the
  /// periodic full resync.
  void Commit(size_t g, double new_scale);

  /// Replaces the running value with a full recompute over the current
  /// scales and returns it. The result is bit-identical to calling
  /// Workload::GeneralizedSensitivity on the tracked scale vector, so it
  /// is the right value to publish as epsilon_spent.
  double Resync();

  /// The tracked per-group scales.
  std::span<const double> scales() const { return scales_; }

  /// The running totals a checkpoint must carry for a resumed tracker to
  /// continue bit-identically to the interrupted one: the compensated sum,
  /// its Kahan carry, and the position in the periodic-resync cycle.
  struct Snapshot {
    double value = 0;
    double compensation = 0;
    uint64_t commits_since_resync = 0;
  };

  Snapshot Save() const {
    return Snapshot{value_, compensation_,
                    static_cast<uint64_t>(commits_since_resync_)};
  }

  /// Overwrites the running totals with a saved snapshot. The tracker must
  /// have been constructed over the checkpoint's scale vector; the restored
  /// value then matches the interrupted tracker bit for bit (construction
  /// alone would recompute and lose the accumulated Kahan carry).
  void Restore(const Snapshot& snapshot) {
    value_ = snapshot.value;
    compensation_ = snapshot.compensation;
    commits_since_resync_ =
        static_cast<size_t>(snapshot.commits_since_resync);
  }

 private:
  double FullRecompute() const;

  const Workload* workload_;
  std::vector<double> scales_;
  std::vector<double> coeffs_;  // hoisted group sensitivity coefficients
  bool incremental_;
  size_t resync_interval_;
  size_t commits_since_resync_ = 0;
  double value_ = 0;
  double compensation_ = 0;  // Kahan carry for the running sum
};

}  // namespace ireduct

#endif  // IREDUCT_DP_INCREMENTAL_SENSITIVITY_H_
