// Exact Laplace noise-reduction coupling — an extension beyond the paper.
//
// The paper's NoiseDown (dp/noise_down.h) mollifies its correlation kernel
// into a continuous density at the cost of O(1/λ') slack in its guarantees
// (see the reproduction notes there). An *exact* alternative exists if one
// allows the new sample to equal the old one with positive probability:
//
//   With α = λ'²/λ², given Y = y,
//     Y' = y                      with probability α·Lap(y;μ,λ')/Lap(y;μ,λ)
//     Y' ~ (1-α)·Lap(y';μ,λ')·Lap(y-y';0,λ) / ((1-Pr[Y'=y])·Lap(y;μ,λ))
//                                 otherwise.
//
// Then (i) Y' ~ Lap(μ, λ') exactly, and (ii) the joint density factors as
//   Lap(y;μ,λ)·f(y'|y) = Lap(y';μ,λ') · [α·δ(y-y') + (1-α)·Lap(y-y';0,λ)]
// whose second factor is independent of μ for *arbitrary* shifts — so
// releasing the pair (or the whole reduction chain) is exactly as private
// as releasing the final sample, for any query sensitivity, not just unit
// count queries. (This construction postdates the paper — it matches the
// "gradual release" coupling of Koufogiannis et al., 2016 — and is offered
// here as the exact drop-in; the ablation bench compares the two.)
#ifndef IREDUCT_DP_LAPLACE_COUPLING_H_
#define IREDUCT_DP_LAPLACE_COUPLING_H_

#include "common/random.h"
#include "common/result.h"

namespace ireduct {

/// Exact noise-reduction resample: given a noisy answer `y` at scale
/// `lambda` for a query with true answer `mu`, returns an answer at scale
/// `lambda_prime` < `lambda` such that the pair costs exactly the final
/// scale's privacy and the marginal is exactly Laplace(mu, lambda_prime).
/// With positive probability the returned value equals `y`.
Result<double> CoupledNoiseDown(double mu, double y, double lambda,
                                double lambda_prime, BitGen& gen);

/// Probability that CoupledNoiseDown returns `y` unchanged:
/// (λ'²/λ²)·Lap(y;μ,λ')/Lap(y;μ,λ) = (λ'/λ)·e^{-|y-μ|(1/λ'-1/λ)}.
double CoupledNoiseDownStickProbability(double mu, double y, double lambda,
                                        double lambda_prime);

}  // namespace ireduct

#endif  // IREDUCT_DP_LAPLACE_COUPLING_H_
