#include "dp/noise_down_chain.h"

#include <cmath>

#include "dp/laplace_coupling.h"
#include "dp/noise_down.h"
#include "obs/event_log.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace ireduct {

double NoiseDownChain::ChargeFor(double scale) const {
  const double slack = options_.reducer == ChainReducer::kPaperNoiseDown
                           ? options_.paper_reducer_slack
                           : 1.0;
  return options_.sensitivity * slack / scale;
}

Result<NoiseDownChain> NoiseDownChain::Start(
    double true_answer, double initial_scale,
    const NoiseDownChainOptions& options, PrivacyAccountant& accountant,
    BitGen& gen) {
  if (!(initial_scale > 0) || !std::isfinite(initial_scale)) {
    return Status::InvalidArgument("initial scale must be positive finite");
  }
  if (!(options.sensitivity > 0) || !std::isfinite(options.sensitivity)) {
    return Status::InvalidArgument("sensitivity must be positive finite");
  }
  NoiseDownChain chain(true_answer, options, &accountant);
  const double charge = chain.ChargeFor(initial_scale);
  IREDUCT_RETURN_NOT_OK(accountant.Charge("noise-down chain start", charge));
  chain.spent_ = charge;
  chain.scale_ = initial_scale;
  chain.answer_ = true_answer + gen.Laplace(initial_scale);
  IREDUCT_METRIC_COUNT("noise_down_chain.starts", 1);
  return chain;
}

Status NoiseDownChain::Reduce(double new_scale, BitGen& gen) {
  if (!(new_scale > 0) || !(new_scale < scale_)) {
    return Status::InvalidArgument(
        "new scale must be in (0, current scale)");
  }
  // Incremental cost: total chain cost is one release at the final scale,
  // so refining from λ_old to λ_new costs the difference.
  const double increment = ChargeFor(new_scale) - ChargeFor(scale_);
  IREDUCT_RETURN_NOT_OK(
      accountant_->Charge("noise-down chain reduce", increment));

  // The reducers work on unit-sensitivity problems; rescale accordingly.
  const double step = options_.sensitivity;
  Result<double> refined =
      options_.reducer == ChainReducer::kPaperNoiseDown
          ? NoiseDownWithStep(true_answer_, answer_, scale_, new_scale, step,
                              gen)
          : CoupledNoiseDown(true_answer_, answer_, scale_, new_scale, gen);
  if (!refined.ok()) return refined.status();
  answer_ = *refined;
  const double old_scale = scale_;
  scale_ = new_scale;
  spent_ += increment;
  ++reductions_;
  IREDUCT_METRIC_COUNT("noise_down_chain.reductions", 1);
  if (obs::EventLog* events = obs::EventLog::Get()) {
    events->Emit("noise_down.reduce", {{"old_scale", old_scale},
                                       {"new_scale", new_scale},
                                       {"epsilon_delta", increment},
                                       {"epsilon_spent", spent_}});
  }
  IREDUCT_LOG(kDebug) << "noise-down chain reduced " << old_scale << " -> "
                      << new_scale << " (+" << increment
                      << " epsilon, total " << spent_ << ")";
  return Status::OK();
}

}  // namespace ireduct
