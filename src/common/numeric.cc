#include "common/numeric.h"

#include <algorithm>
#include <limits>

namespace ireduct {

double CoshMinusOne(double x) {
  const double s = std::sinh(x / 2.0);
  return 2.0 * s * s;
}

double CoshDiff(double a, double b) {
  return 2.0 * std::sinh((a + b) / 2.0) * std::sinh((a - b) / 2.0);
}

double ExpDiff(double a, double b) { return std::exp(b) * std::expm1(a - b); }

double LogAddExp(double a, double b) {
  if (std::isinf(a) && a < 0) return b;
  if (std::isinf(b) && b < 0) return a;
  const double m = std::max(a, b);
  return m + std::log1p(std::exp(-std::fabs(a - b)));
}

double LogSubExp(double a, double b) {
  if (a <= b) return -std::numeric_limits<double>::infinity();
  // log(e^a - e^b) = a + log(1 - e^{b-a}).
  return a + std::log1p(-std::exp(b - a));
}

double StableSum(std::span<const double> values) {
  KahanSum acc;
  for (double v : values) acc.Add(v);
  return acc.value();
}

}  // namespace ireduct
