#include "common/random.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/simd_kernels.h"

namespace ireduct {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

BitGen::BitGen(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  // A zero state would lock the generator at zero; splitmix64 cannot emit
  // four zero words in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t BitGen::operator()() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double BitGen::Uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double BitGen::UniformPositive() {
  return static_cast<double>(((*this)() >> 11) + 1) * 0x1.0p-53;
}

double BitGen::Uniform(double lo, double hi) {
  IREDUCT_DCHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t BitGen::UniformInt(uint64_t n) {
  IREDUCT_DCHECK(n > 0);
  // Rejection to avoid modulo bias.
  const uint64_t threshold = (~uint64_t{0} - n + 1) % n;
  for (;;) {
    const uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double BitGen::Exponential(double mean) {
  IREDUCT_DCHECK(mean > 0);
  return -mean * std::log(UniformPositive());
}

double BitGen::Laplace(double scale) {
  IREDUCT_DCHECK(scale > 0);
  // Inverse-CDF: u in (-1/2, 1/2], x = -scale * sgn(u) * ln(1 - 2|u|).
  const double u = Uniform() - 0.5;
  const double sign = (u >= 0) ? 1.0 : -1.0;
  double mag = 2.0 * std::fabs(u);
  // log1p for accuracy near 0; avoid log(0) at the extreme.
  if (mag >= 1.0) mag = std::nextafter(1.0, 0.0);
  return -scale * sign * std::log1p(-mag);
}

double BitGen::Laplace(double mu, double scale) { return mu + Laplace(scale); }

double BitGen::TruncatedExponential(double mean, double lo, double hi) {
  IREDUCT_DCHECK(mean > 0);
  IREDUCT_DCHECK(lo < hi);
  if (std::isinf(hi)) {
    return lo + Exponential(mean);
  }
  // Inverse-CDF on [lo, hi]: F(x) = (1 - e^{-(x-lo)/mean}) / (1 - e^{-w/mean})
  // with w = hi - lo.  x = lo - mean * log1p(u * expm1(-w/mean)).
  const double w = hi - lo;
  const double u = Uniform();
  const double x = lo - mean * std::log1p(u * std::expm1(-w / mean));
  // Clamp against round-off at the boundaries.
  return std::fmin(std::fmax(x, lo), hi);
}

std::array<uint64_t, 4> BitGen::SaveState() const {
  return {s_[0], s_[1], s_[2], s_[3]};
}

BitGen BitGen::FromState(const std::array<uint64_t, 4>& state) {
  BitGen gen;
  for (int i = 0; i < 4; ++i) gen.s_[i] = state[i];
  // Preserve the all-zero guard of the seeding path.
  if ((gen.s_[0] | gen.s_[1] | gen.s_[2] | gen.s_[3]) == 0) gen.s_[0] = 1;
  return gen;
}

BitGen BitGen::Fork() { return BitGen((*this)()); }

namespace {

// Four lane substreams in fixed fork order: exactly simd::kBatchLanes
// parent draws, whatever the batch size.
simd::LaneStates ForkLanes(BitGen& gen) {
  simd::LaneStates states;
  for (auto& lane : states) lane = gen.Fork().SaveState();
  return states;
}

}  // namespace

void BitGen::LaplaceBatch(std::span<const double> scales,
                          std::span<double> out) {
  IREDUCT_DCHECK(scales.size() == out.size());
  if (out.empty()) return;
  const simd::LaneStates states = ForkLanes(*this);
  simd::BatchLaplace(states, scales.data(), out.data(), out.size());
}

void BitGen::ExponentialBatch(double mean, std::span<double> out) {
  IREDUCT_DCHECK(mean > 0);
  if (out.empty()) return;
  const simd::LaneStates states = ForkLanes(*this);
  simd::BatchExponential(states, mean, out.data(), out.size());
}

bool BitGen::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return Uniform() < p;
}

}  // namespace ireduct
