// Deterministic fault injection for the durability layer.
//
// Crash-safety claims (write-ahead ledger journal, checkpoint/resume) are
// only as good as their torn-write and mid-run-kill coverage, and real
// crashes are not reproducible. This harness makes them so: a fault spec —
// from the IREDUCT_FAULT environment variable or set programmatically —
// arms exactly one deterministic failure at a named *fault point*, and the
// instrumented code paths (LedgerJournal appends, FileCheckpointSink
// writes, the iReduct round loop) consult the injector at each hit.
//
// Spec grammar (comma-separated arms):
//   point:action@n          e.g. "journal.append:fail@3"
//   point:truncate@n=m      truncate the n-th write after m bytes
//
// Actions:
//   fail      the n-th hit reports an injected I/O error (nothing written)
//   truncate  the n-th write persists only its first m bytes, then errors —
//             a torn record, exactly what a crash mid-write leaves behind
//   crash     the n-th hit calls _Exit(86): no destructors, no flushing —
//             the closest in-process stand-in for SIGKILL
//
// Hit counts are per point and 1-based. Unarmed points cost one branch on
// a usually-false atomic flag.
#ifndef IREDUCT_COMMON_FAULT_H_
#define IREDUCT_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ireduct {

/// What an armed fault point does when its trigger count is reached.
enum class FaultAction {
  kNone,
  kFail,
  kTruncate,
  kCrash,
};

/// The injector's answer for one hit of a fault point.
struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  /// For kTruncate: number of bytes of the write to persist.
  uint64_t truncate_bytes = 0;

  bool fired() const { return action != FaultAction::kNone; }
};

/// Process-wide registry of armed faults. Thread-safe; disarmed (the
/// default and the IREDUCT_FAULT-unset case) it is a single relaxed
/// atomic load per hit.
class FaultInjector {
 public:
  /// The shared instance. On first use it arms itself from the
  /// IREDUCT_FAULT environment variable (ignored if unset or empty;
  /// the process aborts on a malformed spec — a typo'd fault test must
  /// not silently run fault-free).
  static FaultInjector& Global();

  /// Replaces the armed spec. Empty disarms. Resets all hit counters.
  Status Configure(std::string_view spec);

  /// Disarms everything and resets hit counters.
  void Reset();

  /// Records one hit of `point` and returns the armed action if this hit
  /// is the configured occurrence. kCrash is executed here (the call
  /// never returns).
  FaultDecision Hit(std::string_view point);

  /// Hits recorded for `point` so far.
  uint64_t hit_count(std::string_view point) const;

  /// True when any arm is configured.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  struct Arm {
    std::string point;
    FaultAction action = FaultAction::kNone;
    uint64_t at_hit = 0;          // 1-based trigger occurrence
    uint64_t truncate_bytes = 0;  // kTruncate only
  };
  struct Counter {
    std::string point;
    uint64_t hits = 0;
  };

  mutable std::mutex mu_;
  std::vector<Arm> arms_;
  std::vector<Counter> counters_;
  // Written under mu_, read with a relaxed load in Hit(): a stale false
  // skips at most the hits racing with Configure, which fault tests never
  // rely on. Relaxed is enough — the armed path re-checks under mu_.
  std::atomic<bool> armed_{false};
};

/// Exit code of an injected kCrash (distinguishes injected crashes from
/// real failures in the crash-matrix harness).
inline constexpr int kFaultCrashExitCode = 86;

}  // namespace ireduct

#endif  // IREDUCT_COMMON_FAULT_H_
