#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ireduct {
namespace simd {

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Tier DetectedTier() {
#if defined(IREDUCT_SIMD_ENABLED) && defined(__x86_64__)
  // SSE2 is part of the x86-64 baseline; only AVX2 needs a runtime probe.
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
  return Tier::kSse2;
#else
  return Tier::kScalar;
#endif
}

namespace {

Tier EnvCap() {
  const char* env = std::getenv("IREDUCT_SIMD");
  if (env == nullptr || *env == '\0') return Tier::kAvx2;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0) {
    return Tier::kScalar;
  }
  if (std::strcmp(env, "sse2") == 0) return Tier::kSse2;
  // "avx2" and anything unrecognized leave detection uncapped; a typo in
  // the override must not silently change results (it can't — tiers are
  // bit-identical) or quietly disable vectorization.
  return Tier::kAvx2;
}

Tier Resolve() {
  const Tier detected = DetectedTier();
  const Tier cap = EnvCap();
  return detected < cap ? detected : cap;
}

std::atomic<int> g_active{-1};

}  // namespace

Tier ActiveTier() {
  int cached = g_active.load(std::memory_order_acquire);
  if (cached < 0) {
    cached = static_cast<int>(Resolve());
    g_active.store(cached, std::memory_order_release);
  }
  return static_cast<Tier>(cached);
}

void ResetDispatchForTesting() {
  g_active.store(static_cast<int>(Resolve()), std::memory_order_release);
}

}  // namespace simd
}  // namespace ireduct
