// Runtime SIMD tier detection and dispatch policy for the vectorized
// kernels in common/simd_kernels.h.
//
// The library ships one algorithm per kernel, instantiated for every tier
// (AVX2, SSE2, scalar) from a shared pack template (common/simd_lanes.h).
// Because every instantiation performs the same IEEE-754 operations in the
// same order — and +, -, *, / are exactly rounded — all tiers produce
// bit-identical results; the tier only changes wall-clock. Dispatch picks
// the widest tier the CPU supports, overridable with the IREDUCT_SIMD
// environment variable:
//
//   IREDUCT_SIMD=off     force the scalar reference tier
//   IREDUCT_SIMD=scalar  same as off
//   IREDUCT_SIMD=sse2    cap at the 2-wide SSE2 tier
//   IREDUCT_SIMD=avx2    cap at the 4-wide AVX2 tier (still subject to
//                        what the CPU actually supports)
//
// Builds configured with -DIREDUCT_ENABLE_SIMD=OFF compile only the scalar
// tier; detection then always reports kScalar.
#ifndef IREDUCT_COMMON_SIMD_H_
#define IREDUCT_COMMON_SIMD_H_

namespace ireduct {
namespace simd {

/// Kernel implementation tiers, widest last.
enum class Tier { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Human-readable tier name ("scalar" / "sse2" / "avx2").
const char* TierName(Tier tier);

/// The widest tier this CPU supports, ignoring the IREDUCT_SIMD override
/// (always kScalar when the build disabled SIMD).
Tier DetectedTier();

/// The tier kernels actually dispatch to: DetectedTier() capped by the
/// IREDUCT_SIMD override. Resolved once and cached; call
/// ResetDispatchForTesting after changing the environment mid-process.
Tier ActiveTier();

/// Re-reads IREDUCT_SIMD and re-resolves ActiveTier. Test-only: kernels
/// re-fetch the dispatch table on every batch call, so a reset between
/// batches is safe, but flipping tiers concurrently with kernel execution
/// is not synchronized.
void ResetDispatchForTesting();

}  // namespace simd
}  // namespace ireduct

#endif  // IREDUCT_COMMON_SIMD_H_
