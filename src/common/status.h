// Status: a lightweight, exception-free error model in the style of
// Arrow / RocksDB. Every fallible operation in the library returns either a
// `Status` or a `Result<T>` (see common/result.h); errors propagate with the
// `IREDUCT_RETURN_NOT_OK` macro.
#ifndef IREDUCT_COMMON_STATUS_H_
#define IREDUCT_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace ireduct {

/// Machine-readable category of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kPrivacyBudgetExceeded = 4,
  kIoError = 5,
  kNotFound = 6,
  kInternal = 7,
  kResourceExhausted = 8,
};

/// Returns a human-readable name for `code` ("OK", "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation: either OK (the common case, represented without
/// any allocation) or an error carrying a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(code, std::move(message))) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status PrivacyBudgetExceeded(std::string msg) {
    return Status(StatusCode::kPrivacyBudgetExceeded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    Rep(StatusCode c, std::string m) : code(c), message(std::move(m)) {}
    StatusCode code;
    std::string message;
  };
  // Shared so that Status is cheap to copy; null means OK.
  std::shared_ptr<const Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace ireduct

/// Propagates a non-OK Status out of the enclosing function.
#define IREDUCT_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::ireduct::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (false)

#endif  // IREDUCT_COMMON_STATUS_H_
