// Declarations shared between the dispatching TU (simd_kernels.cc) and the
// AVX2 TU (simd_kernels_avx2.cc, compiled with -mavx2). Interfaces use only
// portable types so the declarations are safe to include anywhere; the
// definitions exist only in builds that compile the AVX2 TU.
#ifndef IREDUCT_COMMON_SIMD_KERNELS_INTERNAL_H_
#define IREDUCT_COMMON_SIMD_KERNELS_INTERNAL_H_

#include "common/simd_kernels.h"

namespace ireduct {
namespace simd {
namespace internal {

void BatchLaplaceAvx2(const LaneStates& states, const double* scales,
                      double* out, size_t n);
void BatchExponentialAvx2(const LaneStates& states, double mean, double* out,
                          size_t n);
void CountPlanAvx2(const CountPlanArgs& args);
void CountPlanNAvx2(const CountPlanNArgs& args);

// Lane-striped scalar counting loops, shared by the scalar/SSE2 tiers and
// the AVX2 fallbacks (indirect rows, oversized strides). Defined in
// simd_kernels.cc.
void CountPlanStripedScalar(const CountPlanArgs& args);
void CountPlanDirectScalar(const CountPlanArgs& args);
void CountPlanNStripedScalar(const CountPlanNArgs& args);
void CountPlanNDirectScalar(const CountPlanNArgs& args);

}  // namespace internal
}  // namespace simd
}  // namespace ireduct

#endif  // IREDUCT_COMMON_SIMD_KERNELS_INTERNAL_H_
