// Shared lane-pack implementation of the vectorized sampling kernels.
//
// One algorithm, many widths: every kernel below is a template over a
// "pack" type P that models W = P::kWidth parallel double/uint64 lanes.
// PackScalar (W = 1) is the pinned reference; PackSse2 (W = 2) and
// PackAvx2 (W = 4, compiled only in the -mavx2 translation unit) run the
// *same operations in the same order* on wider registers. Since IEEE-754
// +, -, *, / are exactly rounded (and the kernels use no FMA and no libm),
// each lane of a wide pack computes bit-for-bit what the scalar pack
// computes — which is what makes the IREDUCT_SIMD dispatch override a pure
// performance knob and lets the parity tests require exact equality.
//
// The batch samplers consume randomness through a fixed 4-substream
// contract (simd_kernels.h): element i draws from lane i mod 4, all four
// lanes advance once per 4-element block (including the final partial
// block), so every tier consumes exactly ceil(n/4) draws per lane.
#ifndef IREDUCT_COMMON_SIMD_LANES_H_
#define IREDUCT_COMMON_SIMD_LANES_H_

#include <cstdint>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ireduct {
namespace simd {
namespace lanes {

inline constexpr size_t kBatchLanes = 4;

// ---------------------------------------------------------------------------
// Pack types
// ---------------------------------------------------------------------------

struct PackScalar {
  static constexpr size_t kWidth = 1;
  using U64 = uint64_t;
  using F64 = double;
  // Masks are all-ones/all-zeros uint64 bit patterns, exactly like the
  // vector compare results, so Select composes identically.
  using Mask = uint64_t;

  static U64 LoadU(const uint64_t* p) { return *p; }
  static void StoreU(uint64_t* p, U64 x) { *p = x; }
  static U64 BroadcastU(uint64_t v) { return v; }
  static U64 Add(U64 a, U64 b) { return a + b; }
  static U64 Xor(U64 a, U64 b) { return a ^ b; }
  static U64 Or(U64 a, U64 b) { return a | b; }
  static U64 And(U64 a, U64 b) { return a & b; }
  template <int k>
  static U64 Shl(U64 a) {
    return a << k;
  }
  template <int k>
  static U64 Shr(U64 a) {
    return a >> k;
  }

  static F64 LoadF(const double* p) { return *p; }
  static void StoreF(double* p, F64 x) { *p = x; }
  static F64 BroadcastF(double v) { return v; }
  static F64 AddF(F64 a, F64 b) { return a + b; }
  static F64 SubF(F64 a, F64 b) { return a - b; }
  static F64 MulF(F64 a, F64 b) { return a * b; }
  static F64 DivF(F64 a, F64 b) { return a / b; }
  static F64 MaxF(F64 a, F64 b) { return a > b ? a : b; }

  static F64 CastToF(U64 x) {
    F64 f;
    std::memcpy(&f, &x, sizeof(f));
    return f;
  }
  static U64 CastToU(F64 f) {
    U64 x;
    std::memcpy(&x, &f, sizeof(x));
    return x;
  }
  static Mask CmpGtF(F64 a, F64 b) { return a > b ? ~uint64_t{0} : 0; }
  static F64 SelectF(Mask m, F64 a, F64 b) {
    return CastToF((CastToU(a) & m) | (CastToU(b) & ~m));
  }
};

#if defined(__SSE2__)
struct PackSse2 {
  static constexpr size_t kWidth = 2;
  using U64 = __m128i;
  using F64 = __m128d;
  using Mask = __m128d;

  static U64 LoadU(const uint64_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void StoreU(uint64_t* p, U64 x) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), x);
  }
  static U64 BroadcastU(uint64_t v) {
    return _mm_set1_epi64x(static_cast<long long>(v));
  }
  static U64 Add(U64 a, U64 b) { return _mm_add_epi64(a, b); }
  static U64 Xor(U64 a, U64 b) { return _mm_xor_si128(a, b); }
  static U64 Or(U64 a, U64 b) { return _mm_or_si128(a, b); }
  static U64 And(U64 a, U64 b) { return _mm_and_si128(a, b); }
  template <int k>
  static U64 Shl(U64 a) {
    return _mm_slli_epi64(a, k);
  }
  template <int k>
  static U64 Shr(U64 a) {
    return _mm_srli_epi64(a, k);
  }

  static F64 LoadF(const double* p) { return _mm_loadu_pd(p); }
  static void StoreF(double* p, F64 x) { _mm_storeu_pd(p, x); }
  static F64 BroadcastF(double v) { return _mm_set1_pd(v); }
  static F64 AddF(F64 a, F64 b) { return _mm_add_pd(a, b); }
  static F64 SubF(F64 a, F64 b) { return _mm_sub_pd(a, b); }
  static F64 MulF(F64 a, F64 b) { return _mm_mul_pd(a, b); }
  static F64 DivF(F64 a, F64 b) { return _mm_div_pd(a, b); }
  // Note: unlike std::max, _mm_max_pd(a, b) picks a only when a > b; the
  // kernels never compare NaNs, and both orders agree on distinct finite
  // values, so scalar MaxF matches lane for lane.
  static F64 MaxF(F64 a, F64 b) { return _mm_max_pd(b, a); }

  static F64 CastToF(U64 x) { return _mm_castsi128_pd(x); }
  static U64 CastToU(F64 f) { return _mm_castpd_si128(f); }
  static Mask CmpGtF(F64 a, F64 b) { return _mm_cmpgt_pd(a, b); }
  static F64 SelectF(Mask m, F64 a, F64 b) {
    return _mm_or_pd(_mm_and_pd(m, a), _mm_andnot_pd(m, b));
  }
};
#endif  // __SSE2__

#if defined(__AVX2__)
struct PackAvx2 {
  static constexpr size_t kWidth = 4;
  using U64 = __m256i;
  using F64 = __m256d;
  using Mask = __m256d;

  static U64 LoadU(const uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void StoreU(uint64_t* p, U64 x) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), x);
  }
  static U64 BroadcastU(uint64_t v) {
    return _mm256_set1_epi64x(static_cast<long long>(v));
  }
  static U64 Add(U64 a, U64 b) { return _mm256_add_epi64(a, b); }
  static U64 Xor(U64 a, U64 b) { return _mm256_xor_si256(a, b); }
  static U64 Or(U64 a, U64 b) { return _mm256_or_si256(a, b); }
  static U64 And(U64 a, U64 b) { return _mm256_and_si256(a, b); }
  template <int k>
  static U64 Shl(U64 a) {
    return _mm256_slli_epi64(a, k);
  }
  template <int k>
  static U64 Shr(U64 a) {
    return _mm256_srli_epi64(a, k);
  }

  static F64 LoadF(const double* p) { return _mm256_loadu_pd(p); }
  static void StoreF(double* p, F64 x) { _mm256_storeu_pd(p, x); }
  static F64 BroadcastF(double v) { return _mm256_set1_pd(v); }
  static F64 AddF(F64 a, F64 b) { return _mm256_add_pd(a, b); }
  static F64 SubF(F64 a, F64 b) { return _mm256_sub_pd(a, b); }
  static F64 MulF(F64 a, F64 b) { return _mm256_mul_pd(a, b); }
  static F64 DivF(F64 a, F64 b) { return _mm256_div_pd(a, b); }
  static F64 MaxF(F64 a, F64 b) { return _mm256_max_pd(b, a); }

  static F64 CastToF(U64 x) { return _mm256_castsi256_pd(x); }
  static U64 CastToU(F64 f) { return _mm256_castpd_si256(f); }
  static Mask CmpGtF(F64 a, F64 b) { return _mm256_cmp_pd(a, b, _CMP_GT_OQ); }
  static F64 SelectF(Mask m, F64 a, F64 b) {
    return _mm256_or_pd(_mm256_and_pd(m, a), _mm256_andnot_pd(m, b));
  }
};
#endif  // __AVX2__

// ---------------------------------------------------------------------------
// xoshiro256++ lane engine
// ---------------------------------------------------------------------------

template <class P>
struct XoshiroPack {
  typename P::U64 s0, s1, s2, s3;

  // Loads P::kWidth consecutive substreams starting at `first_lane` from
  // word-of-state SoA gathers.
  template <class LaneStates>
  void Load(const LaneStates& states, size_t first_lane) {
    uint64_t tmp[P::kWidth];
    for (int w = 0; w < 4; ++w) {
      for (size_t l = 0; l < P::kWidth; ++l) {
        tmp[l] = states[first_lane + l][static_cast<size_t>(w)];
      }
      typename P::U64 v = P::LoadU(tmp);
      (w == 0 ? s0 : w == 1 ? s1 : w == 2 ? s2 : s3) = v;
    }
  }

  template <int k>
  static typename P::U64 Rotl(typename P::U64 x) {
    return P::Or(P::template Shl<k>(x), P::template Shr<64 - k>(x));
  }

  typename P::U64 Next() {
    const typename P::U64 result = P::Add(Rotl<23>(P::Add(s0, s3)), s0);
    const typename P::U64 t = P::template Shl<17>(s1);
    s2 = P::Xor(s2, s0);
    s3 = P::Xor(s3, s1);
    s1 = P::Xor(s1, s2);
    s0 = P::Xor(s0, s3);
    s2 = P::Xor(s2, t);
    s3 = Rotl<45>(s3);
    return result;
  }
};

// ---------------------------------------------------------------------------
// Transforms
// ---------------------------------------------------------------------------

// log(x) for x in [2^-53, 1]: Cephes log.c evaluated with plain +,-,*,/
// (no FMA, no libm) so every tier matches bit for bit. Relative error is
// ~2e-17 over the reduced argument range — noise-sampling quality is
// unaffected. Constants are the published Cephes double-precision set.
template <class P>
typename P::F64 LogCore(typename P::F64 x) {
  using F64 = typename P::F64;
  using U64 = typename P::U64;

  const U64 bits = P::CastToU(x);
  // Exponent as a double via the 2^52 magic-number trick (values < 2^52
  // convert exactly); x is normal and positive here.
  const U64 ebits =
      P::Or(P::template Shr<52>(bits), P::BroadcastU(0x4330000000000000ULL));
  F64 e = P::SubF(P::SubF(P::CastToF(ebits), P::BroadcastF(0x1.0p52)),
                  P::BroadcastF(1023.0));
  // Mantissa remapped to [1, 2).
  F64 m = P::CastToF(P::Or(P::And(bits, P::BroadcastU(0x000FFFFFFFFFFFFFULL)),
                           P::BroadcastU(0x3FF0000000000000ULL)));
  // Fold m > sqrt(2) down so z = m - 1 stays in [-0.2929, 0.4142].
  const typename P::Mask fold =
      P::CmpGtF(m, P::BroadcastF(1.41421356237309504880));
  m = P::SelectF(fold, P::MulF(m, P::BroadcastF(0.5)), m);
  e = P::SelectF(fold, P::AddF(e, P::BroadcastF(1.0)), e);

  const F64 z = P::SubF(m, P::BroadcastF(1.0));
  const F64 z2 = P::MulF(z, z);

  F64 p = P::BroadcastF(1.01875663804580931796e-4);
  p = P::AddF(P::MulF(p, z), P::BroadcastF(4.97494994976747001425e-1));
  p = P::AddF(P::MulF(p, z), P::BroadcastF(4.70579119878881725854e0));
  p = P::AddF(P::MulF(p, z), P::BroadcastF(1.44989225341610930846e1));
  p = P::AddF(P::MulF(p, z), P::BroadcastF(1.79368678507819816313e1));
  p = P::AddF(P::MulF(p, z), P::BroadcastF(7.70838733755885391666e0));

  F64 q = P::AddF(z, P::BroadcastF(1.12873587189167450590e1));
  q = P::AddF(P::MulF(q, z), P::BroadcastF(4.52279145837532221105e1));
  q = P::AddF(P::MulF(q, z), P::BroadcastF(8.29875266912776603211e1));
  q = P::AddF(P::MulF(q, z), P::BroadcastF(7.11544750618563894466e1));
  q = P::AddF(P::MulF(q, z), P::BroadcastF(2.31251620126765340583e1));

  F64 y = P::MulF(z, P::DivF(P::MulF(z2, p), q));
  y = P::SubF(y, P::MulF(e, P::BroadcastF(2.121944400546905827679e-4)));
  y = P::SubF(y, P::MulF(P::BroadcastF(0.5), z2));
  F64 r = P::AddF(z, y);
  r = P::AddF(r, P::MulF(e, P::BroadcastF(0.693359375)));
  return r;
}

// Laplace(scale) noise from one raw xoshiro word per lane, mirroring the
// scalar inverse-CDF (BitGen::Laplace) shape on a 52-bit uniform:
//   u   = [0, 1) from the top mantissa bits
//   t   = 2u - 1 in [-1, 1), sign of t = side of the distribution
//   om  = 1 - |t|, exact (both operands are k*2^-51), clamped away from 0
//   out = -scale * sgn(t) * log(om)
template <class P>
typename P::F64 LaplaceFromBits(typename P::U64 x, typename P::F64 scale) {
  using F64 = typename P::F64;
  const F64 one = P::BroadcastF(1.0);
  const F64 u = P::SubF(
      P::CastToF(P::Or(P::template Shr<12>(x),
                       P::BroadcastU(0x3FF0000000000000ULL))),
      one);
  const F64 t = P::SubF(P::AddF(u, u), one);
  const F64 mag =
      P::CastToF(P::And(P::CastToU(t), P::BroadcastU(0x7FFFFFFFFFFFFFFFULL)));
  F64 om = P::SubF(one, mag);
  om = P::MaxF(om, P::BroadcastF(0x1.0p-53));
  const F64 lg = LogCore<P>(om);
  // -sgn(t): log(om) <= 0, so t >= 0 must flip the sign back to positive.
  const F64 sgn = P::SelectF(P::CmpGtF(P::BroadcastF(0.0), t), one,
                             P::BroadcastF(-1.0));
  return P::MulF(P::MulF(sgn, scale), lg);
}

// Exponential(mean) from one raw word per lane: -mean * log(1 - u) with
// 1 - u in (0, 1] exact.
template <class P>
typename P::F64 ExpFromBits(typename P::U64 x, typename P::F64 neg_mean) {
  using F64 = typename P::F64;
  const F64 one = P::BroadcastF(1.0);
  const F64 u = P::SubF(
      P::CastToF(P::Or(P::template Shr<12>(x),
                       P::BroadcastU(0x3FF0000000000000ULL))),
      one);
  const F64 up = P::SubF(one, u);
  return P::MulF(neg_mean, LogCore<P>(up));
}

// ---------------------------------------------------------------------------
// Batch drivers
// ---------------------------------------------------------------------------

template <class P, class LaneStates>
void BatchLaplaceT(const LaneStates& states, const double* scales,
                   double* out, size_t n) {
  constexpr size_t W = P::kWidth;
  constexpr size_t kGroups = kBatchLanes / W;
  XoshiroPack<P> rng[kGroups];
  for (size_t g = 0; g < kGroups; ++g) rng[g].Load(states, g * W);

  size_t base = 0;
  for (; base + kBatchLanes <= n; base += kBatchLanes) {
    for (size_t g = 0; g < kGroups; ++g) {
      const auto x = rng[g].Next();
      const auto s = P::LoadF(scales + base + g * W);
      P::StoreF(out + base + g * W, LaplaceFromBits<P>(x, s));
    }
  }
  if (base < n) {
    // Final partial block: all four lanes still advance once (the fixed
    // draw contract), surplus lanes compute on a padding scale of 1 and
    // are discarded.
    double pad_scales[kBatchLanes];
    double pad_out[kBatchLanes];
    for (size_t j = 0; j < kBatchLanes; ++j) {
      pad_scales[j] = base + j < n ? scales[base + j] : 1.0;
    }
    for (size_t g = 0; g < kGroups; ++g) {
      const auto x = rng[g].Next();
      const auto s = P::LoadF(pad_scales + g * W);
      P::StoreF(pad_out + g * W, LaplaceFromBits<P>(x, s));
    }
    for (size_t j = 0; base + j < n; ++j) out[base + j] = pad_out[j];
  }
}

template <class P, class LaneStates>
void BatchExponentialT(const LaneStates& states, double mean, double* out,
                       size_t n) {
  constexpr size_t W = P::kWidth;
  constexpr size_t kGroups = kBatchLanes / W;
  XoshiroPack<P> rng[kGroups];
  for (size_t g = 0; g < kGroups; ++g) rng[g].Load(states, g * W);
  const auto neg_mean = P::BroadcastF(-mean);

  size_t base = 0;
  for (; base + kBatchLanes <= n; base += kBatchLanes) {
    for (size_t g = 0; g < kGroups; ++g) {
      const auto x = rng[g].Next();
      P::StoreF(out + base + g * W, ExpFromBits<P>(x, neg_mean));
    }
  }
  if (base < n) {
    double pad_out[kBatchLanes];
    for (size_t g = 0; g < kGroups; ++g) {
      const auto x = rng[g].Next();
      P::StoreF(pad_out + g * W, ExpFromBits<P>(x, neg_mean));
    }
    for (size_t j = 0; base + j < n; ++j) out[base + j] = pad_out[j];
  }
}

}  // namespace lanes
}  // namespace simd
}  // namespace ireduct

#endif  // IREDUCT_COMMON_SIMD_LANES_H_
