// Fixed-size worker pool for the batched iReduct resampling rounds (and any
// other embarrassingly parallel per-group work).
//
// Semantics are deliberately minimal: tasks are plain std::function<void()>
// closures, Submit never blocks the caller (the queue is unbounded), Wait
// blocks until every task submitted so far has finished, and the destructor
// drains the queue before joining. Determinism is the caller's job: tasks
// must write to disjoint state (e.g. disjoint answer ranges) and carry their
// own RNG substreams (BitGen::Fork), so the observable result is independent
// of scheduling and of the pool size.
#ifndef IREDUCT_COMMON_THREAD_POOL_H_
#define IREDUCT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ireduct {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks; tasks run in submission order per
  /// worker pickup (no ordering guarantee across workers).
  void Submit(std::function<void()> task);

  /// Blocks until all tasks submitted before this call have completed.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ireduct

#endif  // IREDUCT_COMMON_THREAD_POOL_H_
