// AVX2 instantiations of the vectorized kernels. This TU is compiled with
// -mavx2 (see src/CMakeLists.txt) and only ever *called* after runtime
// dispatch confirmed AVX2 support, so it may use AVX2 intrinsics freely —
// but nothing in here may leak into a header included by plain TUs.
#include <cstdint>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>

#include "common/simd_kernels_internal.h"
#include "common/simd_lanes.h"

namespace ireduct {
namespace simd {
namespace internal {

void BatchLaplaceAvx2(const LaneStates& states, const double* scales,
                      double* out, size_t n) {
  lanes::BatchLaplaceT<lanes::PackAvx2>(states, scales, out, n);
}

void BatchExponentialAvx2(const LaneStates& states, double mean, double* out,
                          size_t n) {
  lanes::BatchExponentialT<lanes::PackAvx2>(states, mean, out, n);
}

namespace {

// Vectorized cell-index computation for the dense-row counting loop:
// 16 rows per iteration, two 8-wide u32 index vectors spilled to a stack
// buffer, increments striped across the four lane tables. The increments
// themselves stay scalar (no scatter in AVX2), but index arithmetic leaves
// the scalar ports free for them and the striping breaks the hot-cell
// dependency chain.
template <bool kArity2>
void CountDenseAvx2(const CountPlanArgs& a) {
  const size_t cells = a.cells;
  uint32_t* const l0 = a.lane_scratch;
  uint32_t* const l1 = l0 + cells;
  uint32_t* const l2 = l1 + cells;
  uint32_t* const l3 = l2 + cells;
  std::memset(l0, 0, kBatchLanes * cells * sizeof(uint32_t));

  const uint16_t* const c0 = a.col0;
  const uint16_t* const c1 = a.col1;
  const __m256i stride = _mm256_set1_epi32(static_cast<int>(a.stride0));

  alignas(32) uint32_t idx[16];
  size_t i = a.begin;
  for (; i + 16 <= a.end; i += 16) {
    __m256i lo = _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c0 + i)));
    __m256i hi = _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(c0 + i + 8)));
    lo = _mm256_mullo_epi32(lo, stride);
    hi = _mm256_mullo_epi32(hi, stride);
    if constexpr (kArity2) {
      lo = _mm256_add_epi32(
          lo, _mm256_cvtepu16_epi32(_mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(c1 + i))));
      hi = _mm256_add_epi32(
          hi, _mm256_cvtepu16_epi32(_mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(c1 + i + 8))));
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx), lo);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx + 8), hi);
    for (size_t j = 0; j < 16; j += 4) {
      ++l0[idx[j]];
      ++l1[idx[j + 1]];
      ++l2[idx[j + 2]];
      ++l3[idx[j + 3]];
    }
  }
  for (; i < a.end; ++i) {
    size_t cell = a.stride0 * c0[i];
    if constexpr (kArity2) cell += c1[i];
    ++l0[cell];
  }

  uint32_t* const counts = a.counts;
  for (size_t c = 0; c < cells; ++c) {
    counts[c] += l0[c] + l1[c] + l2[c] + l3[c];
  }
}

// General-arity sibling of CountDenseAvx2: the two index vectors accumulate
// one widen+multiply+add per column instead of the fixed col0/col1 pair.
// Each stride term is mathematically < cells <= 2^31, so the mod-2^32
// mullo is exact for the u32 indices.
void CountDenseNAvx2(const CountPlanNArgs& a) {
  const size_t cells = a.cells;
  uint32_t* const l0 = a.lane_scratch;
  uint32_t* const l1 = l0 + cells;
  uint32_t* const l2 = l1 + cells;
  uint32_t* const l3 = l2 + cells;
  std::memset(l0, 0, kBatchLanes * cells * sizeof(uint32_t));

  const uint16_t* const* const cols = a.cols;
  const size_t* const strides = a.strides;
  const size_t arity = a.arity;

  alignas(32) uint32_t idx[16];
  size_t i = a.begin;
  for (; i + 16 <= a.end; i += 16) {
    __m256i lo = _mm256_setzero_si256();
    __m256i hi = _mm256_setzero_si256();
    for (size_t k = 0; k < arity; ++k) {
      const __m256i stride =
          _mm256_set1_epi32(static_cast<int>(strides[k]));
      const __m256i vlo = _mm256_cvtepu16_epi32(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cols[k] + i)));
      const __m256i vhi = _mm256_cvtepu16_epi32(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(cols[k] + i + 8)));
      lo = _mm256_add_epi32(lo, _mm256_mullo_epi32(vlo, stride));
      hi = _mm256_add_epi32(hi, _mm256_mullo_epi32(vhi, stride));
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx), lo);
    _mm256_store_si256(reinterpret_cast<__m256i*>(idx + 8), hi);
    for (size_t j = 0; j < 16; j += 4) {
      ++l0[idx[j]];
      ++l1[idx[j + 1]];
      ++l2[idx[j + 2]];
      ++l3[idx[j + 3]];
    }
  }
  for (; i < a.end; ++i) {
    size_t cell = 0;
    for (size_t k = 0; k < arity; ++k) cell += strides[k] * cols[k][i];
    ++l0[cell];
  }

  uint32_t* const counts = a.counts;
  for (size_t c = 0; c < cells; ++c) {
    counts[c] += l0[c] + l1[c] + l2[c] + l3[c];
  }
}

}  // namespace

void CountPlanAvx2(const CountPlanArgs& a) {
  // The vector path needs lane scratch, dense rows, and u32-safe indices;
  // everything else takes the scalar loops (same totals either way).
  const bool u32_safe = a.cells <= (size_t{1} << 31) &&
                        a.stride0 <= (size_t{1} << 31);
  if (a.lane_scratch == nullptr) {
    CountPlanDirectScalar(a);
  } else if (a.row_idx != nullptr || !u32_safe) {
    CountPlanStripedScalar(a);
  } else if (a.col1 != nullptr) {
    CountDenseAvx2<true>(a);
  } else {
    CountDenseAvx2<false>(a);
  }
}

void CountPlanNAvx2(const CountPlanNArgs& a) {
  bool u32_safe = a.cells <= (size_t{1} << 31);
  for (size_t k = 0; u32_safe && k < a.arity; ++k) {
    u32_safe = a.strides[k] <= (size_t{1} << 31);
  }
  if (a.lane_scratch == nullptr) {
    CountPlanNDirectScalar(a);
  } else if (a.row_idx != nullptr || !u32_safe) {
    CountPlanNStripedScalar(a);
  } else {
    CountDenseNAvx2(a);
  }
}

}  // namespace internal
}  // namespace simd
}  // namespace ireduct

#endif  // __AVX2__
