#include "common/status.h"

namespace ireduct {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kPrivacyBudgetExceeded:
      return "Privacy budget exceeded";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace ireduct
