#include "common/fault.h"

#include <cstdio>
#include <cstdlib>

namespace ireduct {

namespace {

// Parses a non-negative integer; returns false on empty/garbage.
bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    if (const char* env = std::getenv("IREDUCT_FAULT");
        env != nullptr && *env != '\0') {
      if (Status s = inj->Configure(env); !s.ok()) {
        // A mistyped spec silently running fault-free would defeat the
        // whole harness; die loudly instead.
        std::fprintf(stderr, "IREDUCT_FAULT: %s\n", s.ToString().c_str());
        std::abort();
      }
    }
    return inj;
  }();
  return *injector;
}

Status FaultInjector::Configure(std::string_view spec) {
  std::vector<Arm> arms;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    if (item.empty()) continue;
    const size_t colon = item.rfind(':');
    const size_t at = item.find('@', colon == std::string_view::npos
                                         ? 0
                                         : colon + 1);
    if (colon == std::string_view::npos || at == std::string_view::npos ||
        colon == 0 || at <= colon + 1) {
      return Status::InvalidArgument("fault arm '" + std::string(item) +
                                     "' is not point:action@n[=m]");
    }
    Arm arm;
    arm.point = std::string(item.substr(0, colon));
    const std::string_view action = item.substr(colon + 1, at - colon - 1);
    std::string_view count = item.substr(at + 1);
    if (action == "fail") {
      arm.action = FaultAction::kFail;
    } else if (action == "crash") {
      arm.action = FaultAction::kCrash;
    } else if (action == "truncate") {
      arm.action = FaultAction::kTruncate;
      const size_t eq = count.find('=');
      if (eq == std::string_view::npos ||
          !ParseU64(count.substr(eq + 1), &arm.truncate_bytes)) {
        return Status::InvalidArgument(
            "fault arm '" + std::string(item) +
            "' needs truncate@n=m (m = bytes to keep)");
      }
      count = count.substr(0, eq);
    } else {
      return Status::InvalidArgument("fault action '" + std::string(action) +
                                     "' must be fail, truncate or crash");
    }
    if (!ParseU64(count, &arm.at_hit) || arm.at_hit == 0) {
      return Status::InvalidArgument("fault arm '" + std::string(item) +
                                     "' needs a positive 1-based hit count");
    }
    arms.push_back(std::move(arm));
  }
  std::lock_guard<std::mutex> lock(mu_);
  arms_ = std::move(arms);
  counters_.clear();
  armed_.store(!arms_.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  arms_.clear();
  counters_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

FaultDecision FaultInjector::Hit(std::string_view point) {
  if (!armed_.load(std::memory_order_relaxed)) return {};
  std::lock_guard<std::mutex> lock(mu_);
  Counter* counter = nullptr;
  for (Counter& c : counters_) {
    if (c.point == point) {
      counter = &c;
      break;
    }
  }
  if (counter == nullptr) {
    counters_.push_back(Counter{std::string(point), 0});
    counter = &counters_.back();
  }
  ++counter->hits;
  for (const Arm& arm : arms_) {
    if (arm.point != point || counter->hits != arm.at_hit) continue;
    if (arm.action == FaultAction::kCrash) {
      // SIGKILL stand-in: no destructors, no stream flushing, nothing —
      // whatever is durable is exactly what fsync already made durable.
      std::_Exit(kFaultCrashExitCode);
    }
    return FaultDecision{arm.action, arm.truncate_bytes};
  }
  return {};
}

uint64_t FaultInjector::hit_count(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Counter& c : counters_) {
    if (c.point == point) return c.hits;
  }
  return 0;
}

}  // namespace ireduct
