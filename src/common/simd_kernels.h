// Vectorized kernels behind the runtime tier dispatch in common/simd.h.
//
// Two kernel families:
//
//  * Batch sampling — BatchLaplace / BatchExponential draw n variates from
//    four xoshiro256++ substreams (LaneStates, one 4-word state per lane).
//    Element i consumes a draw from lane i mod 4 and all four lanes advance
//    once per 4-element block, including the final partial block, so the
//    output is a function of the lane states alone: the same for every
//    tier, every thread count, and every machine. The *ScalarRef variants
//    always run the pinned scalar instantiation regardless of dispatch;
//    parity tests compare the dispatched output against them bit for bit.
//
//  * Counting — CountPlan folds a row range of uint16 attribute codes into
//    a single marginal's count table (cell = stride0 * col0 + col1). With
//    `lane_scratch` provided, increments round-robin across four private
//    count buffers (breaking the store-to-load dependency chain that
//    serializes increments on Zipf-hot cells) which are then merged in
//    fixed lane order; counts are integers, so any increment placement
//    yields identical totals.
//
// All kernels are instantiated per tier from the shared pack templates in
// common/simd_lanes.h; see that header for the bit-identity argument.
#ifndef IREDUCT_COMMON_SIMD_KERNELS_H_
#define IREDUCT_COMMON_SIMD_KERNELS_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace ireduct {
namespace simd {

/// Number of RNG substreams the batch samplers consume. Fixed by the
/// stream contract, not by the register width of any tier.
inline constexpr size_t kBatchLanes = 4;

/// xoshiro256++ states for the four sampling substreams, lane-major:
/// states[lane][word]. Populated from BitGen::Fork in lane order.
using LaneStates = std::array<std::array<uint64_t, 4>, kBatchLanes>;

/// out[i] = Laplace(scales[i]) drawn from lane i % 4. Dispatches to the
/// active tier; bit-identical to BatchLaplaceScalarRef on every tier.
void BatchLaplace(const LaneStates& states, const double* scales, double* out,
                  size_t n);

/// Pinned scalar reference for BatchLaplace (ignores dispatch).
void BatchLaplaceScalarRef(const LaneStates& states, const double* scales,
                           double* out, size_t n);

/// out[i] = Exponential(mean) drawn from lane i % 4.
void BatchExponential(const LaneStates& states, double mean, double* out,
                      size_t n);

/// Pinned scalar reference for BatchExponential (ignores dispatch).
void BatchExponentialScalarRef(const LaneStates& states, double mean,
                               double* out, size_t n);

/// One marginal's counting pass over a row range.
struct CountPlanArgs {
  const uint16_t* col0 = nullptr;  // first attribute's codes (required)
  const uint16_t* col1 = nullptr;  // second attribute's codes; null = arity 1
  const uint32_t* row_idx = nullptr;  // row subset; null = dense range
  size_t begin = 0;                   // row range [begin, end)
  size_t end = 0;
  size_t stride0 = 1;       // cell = stride0 * col0[r] (+ col1[r])
  uint32_t* counts = nullptr;  // plan-local table, `cells` entries, +='d into
  size_t cells = 0;
  // Optional scratch of kBatchLanes * cells uint32s (need not be zeroed;
  // the kernel clears it). When provided, increments are striped across
  // four private buffers and merged — the profitable mode once the row
  // range is large relative to `cells`. When null, increments go straight
  // into `counts`.
  uint32_t* lane_scratch = nullptr;
};

/// Counts the range into args.counts. Dispatches to the active tier; total
/// counts are identical in every mode and tier (integer increments).
void CountPlan(const CountPlanArgs& args);

/// Pinned scalar reference for CountPlan (ignores dispatch).
void CountPlanScalarRef(const CountPlanArgs& args);

/// General-arity counting pass (cell = sum over k of strides[k] *
/// cols[k][r]). CountPlan's fixed two-column shape covers the paper's 1D/2D
/// tasks; this is the arity-3+ path, vectorized the same way: AVX2 computes
/// the fused cell indices 16 rows at a time (one widen+multiply+add per
/// column), increments stripe across four private tables.
struct CountPlanNArgs {
  const uint16_t* const* cols = nullptr;  // `arity` column code pointers
  const size_t* strides = nullptr;        // `arity` row-major strides
  size_t arity = 0;
  const uint32_t* row_idx = nullptr;  // row subset; null = dense range
  size_t begin = 0;                   // row range [begin, end)
  size_t end = 0;
  uint32_t* counts = nullptr;  // plan-local table, `cells` entries, +='d into
  size_t cells = 0;
  // Same contract as CountPlanArgs::lane_scratch.
  uint32_t* lane_scratch = nullptr;
};

/// Counts the range into args.counts; identical totals in every mode/tier.
void CountPlanN(const CountPlanNArgs& args);

/// Pinned scalar reference for CountPlanN (ignores dispatch).
void CountPlanNScalarRef(const CountPlanNArgs& args);

}  // namespace simd
}  // namespace ireduct

#endif  // IREDUCT_COMMON_SIMD_KERNELS_H_
