// Numerically stable kernels used by the NoiseDown distribution and the
// evaluation code. The noise scales in the paper's experiments reach
// |T|/10 ≈ 10^6, so quantities like cosh(1/λ) - 1 ≈ 5e-13 must be computed
// without catastrophic cancellation.
#ifndef IREDUCT_COMMON_NUMERIC_H_
#define IREDUCT_COMMON_NUMERIC_H_

#include <cmath>
#include <cstddef>
#include <span>

namespace ireduct {

/// cosh(x) - 1, accurate for small |x| (uses 2·sinh²(x/2)).
double CoshMinusOne(double x);

/// cosh(a) - cosh(b), accurate when a ≈ b or both are small.
/// Uses cosh(a) - cosh(b) = 2·sinh((a+b)/2)·sinh((a-b)/2).
double CoshDiff(double a, double b);

/// e^a - e^b computed as e^b · expm1(a - b); accurate when a ≈ b.
double ExpDiff(double a, double b);

/// log(e^a + e^b) without overflow.
double LogAddExp(double a, double b);

/// log(e^a - e^b) for a > b, without overflow; -inf if a <= b.
double LogSubExp(double a, double b);

/// Kahan-compensated accumulator for long sums of doubles.
class KahanSum {
 public:
  void Add(double x) {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }
  double value() const { return sum_; }

 private:
  double sum_ = 0;
  double compensation_ = 0;
};

/// Sum of a span with Kahan compensation.
double StableSum(std::span<const double> values);

/// Numerically integrates `f` over [lo, hi] with composite Simpson's rule
/// using `intervals` subintervals (rounded up to an even count).
template <typename F>
double SimpsonIntegrate(F&& f, double lo, double hi, int intervals) {
  if (intervals < 2) intervals = 2;
  if (intervals % 2 != 0) ++intervals;
  const double h = (hi - lo) / intervals;
  KahanSum acc;
  acc.Add(f(lo));
  acc.Add(f(hi));
  for (int i = 1; i < intervals; ++i) {
    const double w = (i % 2 == 0) ? 2.0 : 4.0;
    acc.Add(w * f(lo + i * h));
  }
  return acc.value() * h / 3.0;
}

}  // namespace ireduct

#endif  // IREDUCT_COMMON_NUMERIC_H_
