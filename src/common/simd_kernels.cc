#include "common/simd_kernels.h"

#include <cstring>

#include "common/simd.h"
#include "common/simd_kernels_internal.h"
#include "common/simd_lanes.h"

namespace ireduct {
namespace simd {

namespace {

// Counting loops, specialized over arity and row indirection so the inner
// loop carries no per-row branches.

template <bool kArity2, bool kIndirect>
void CountDirect(const CountPlanArgs& a) {
  uint32_t* const counts = a.counts;
  const uint16_t* const c0 = a.col0;
  const uint16_t* const c1 = a.col1;
  const size_t s0 = a.stride0;
  for (size_t i = a.begin; i < a.end; ++i) {
    const size_t r = kIndirect ? a.row_idx[i] : i;
    size_t cell = s0 * c0[r];
    if constexpr (kArity2) cell += c1[r];
    ++counts[cell];
  }
}

template <bool kArity2, bool kIndirect>
void CountStriped(const CountPlanArgs& a) {
  const size_t cells = a.cells;
  uint32_t* const l0 = a.lane_scratch;
  uint32_t* const l1 = l0 + cells;
  uint32_t* const l2 = l1 + cells;
  uint32_t* const l3 = l2 + cells;
  std::memset(l0, 0, kBatchLanes * cells * sizeof(uint32_t));
  const uint16_t* const c0 = a.col0;
  const uint16_t* const c1 = a.col1;
  const size_t s0 = a.stride0;

  const auto cell_of = [&](size_t i) {
    const size_t r = kIndirect ? a.row_idx[i] : i;
    size_t cell = s0 * c0[r];
    if constexpr (kArity2) cell += c1[r];
    return cell;
  };

  size_t i = a.begin;
  // Four private tables give the core four independent increment chains;
  // on Zipf-hot cells the direct loop serializes on store-to-load
  // forwarding of the same cache line.
  for (; i + 4 <= a.end; i += 4) {
    ++l0[cell_of(i)];
    ++l1[cell_of(i + 1)];
    ++l2[cell_of(i + 2)];
    ++l3[cell_of(i + 3)];
  }
  for (; i < a.end; ++i) ++l0[cell_of(i)];

  uint32_t* const counts = a.counts;
  for (size_t c = 0; c < cells; ++c) {
    counts[c] += l0[c] + l1[c] + l2[c] + l3[c];
  }
}

// General-arity variants of the same two loops. The arity-long stride
// reduction is the only difference; indirection is still hoisted to a
// template parameter so the dense case keeps a branch-free inner loop.

template <bool kIndirect>
void CountNDirect(const CountPlanNArgs& a) {
  uint32_t* const counts = a.counts;
  const uint16_t* const* const cols = a.cols;
  const size_t* const strides = a.strides;
  const size_t arity = a.arity;
  for (size_t i = a.begin; i < a.end; ++i) {
    const size_t r = kIndirect ? a.row_idx[i] : i;
    size_t cell = 0;
    for (size_t k = 0; k < arity; ++k) cell += strides[k] * cols[k][r];
    ++counts[cell];
  }
}

template <bool kIndirect>
void CountNStriped(const CountPlanNArgs& a) {
  const size_t cells = a.cells;
  uint32_t* const l0 = a.lane_scratch;
  uint32_t* const l1 = l0 + cells;
  uint32_t* const l2 = l1 + cells;
  uint32_t* const l3 = l2 + cells;
  std::memset(l0, 0, kBatchLanes * cells * sizeof(uint32_t));
  const uint16_t* const* const cols = a.cols;
  const size_t* const strides = a.strides;
  const size_t arity = a.arity;

  const auto cell_of = [&](size_t i) {
    const size_t r = kIndirect ? a.row_idx[i] : i;
    size_t cell = 0;
    for (size_t k = 0; k < arity; ++k) cell += strides[k] * cols[k][r];
    return cell;
  };

  size_t i = a.begin;
  for (; i + 4 <= a.end; i += 4) {
    ++l0[cell_of(i)];
    ++l1[cell_of(i + 1)];
    ++l2[cell_of(i + 2)];
    ++l3[cell_of(i + 3)];
  }
  for (; i < a.end; ++i) ++l0[cell_of(i)];

  uint32_t* const counts = a.counts;
  for (size_t c = 0; c < cells; ++c) {
    counts[c] += l0[c] + l1[c] + l2[c] + l3[c];
  }
}

template <void (*Fn1D)(const CountPlanArgs&),
          void (*Fn1I)(const CountPlanArgs&),
          void (*Fn2D)(const CountPlanArgs&),
          void (*Fn2I)(const CountPlanArgs&)>
void CountDispatchShape(const CountPlanArgs& a) {
  const bool arity2 = a.col1 != nullptr;
  const bool indirect = a.row_idx != nullptr;
  if (arity2) {
    (indirect ? Fn2I : Fn2D)(a);
  } else {
    (indirect ? Fn1I : Fn1D)(a);
  }
}

}  // namespace

namespace internal {

void CountPlanDirectScalar(const CountPlanArgs& a) {
  CountDispatchShape<CountDirect<false, false>, CountDirect<false, true>,
                     CountDirect<true, false>, CountDirect<true, true>>(a);
}

void CountPlanStripedScalar(const CountPlanArgs& a) {
  CountDispatchShape<CountStriped<false, false>, CountStriped<false, true>,
                     CountStriped<true, false>, CountStriped<true, true>>(a);
}

void CountPlanNDirectScalar(const CountPlanNArgs& a) {
  (a.row_idx != nullptr ? CountNDirect<true> : CountNDirect<false>)(a);
}

void CountPlanNStripedScalar(const CountPlanNArgs& a) {
  (a.row_idx != nullptr ? CountNStriped<true> : CountNStriped<false>)(a);
}

}  // namespace internal

void BatchLaplaceScalarRef(const LaneStates& states, const double* scales,
                           double* out, size_t n) {
  lanes::BatchLaplaceT<lanes::PackScalar>(states, scales, out, n);
}

void BatchExponentialScalarRef(const LaneStates& states, double mean,
                               double* out, size_t n) {
  lanes::BatchExponentialT<lanes::PackScalar>(states, mean, out, n);
}

void BatchLaplace(const LaneStates& states, const double* scales, double* out,
                  size_t n) {
  switch (ActiveTier()) {
#if defined(IREDUCT_SIMD_ENABLED) && defined(__x86_64__)
    case Tier::kAvx2:
      internal::BatchLaplaceAvx2(states, scales, out, n);
      return;
#endif
#if defined(__SSE2__)
    case Tier::kSse2:
      lanes::BatchLaplaceT<lanes::PackSse2>(states, scales, out, n);
      return;
#endif
    default:
      break;
  }
  lanes::BatchLaplaceT<lanes::PackScalar>(states, scales, out, n);
}

void BatchExponential(const LaneStates& states, double mean, double* out,
                      size_t n) {
  switch (ActiveTier()) {
#if defined(IREDUCT_SIMD_ENABLED) && defined(__x86_64__)
    case Tier::kAvx2:
      internal::BatchExponentialAvx2(states, mean, out, n);
      return;
#endif
#if defined(__SSE2__)
    case Tier::kSse2:
      lanes::BatchExponentialT<lanes::PackSse2>(states, mean, out, n);
      return;
#endif
    default:
      break;
  }
  lanes::BatchExponentialT<lanes::PackScalar>(states, mean, out, n);
}

void CountPlanScalarRef(const CountPlanArgs& args) {
  internal::CountPlanDirectScalar(args);
}

void CountPlan(const CountPlanArgs& args) {
#if defined(IREDUCT_SIMD_ENABLED) && defined(__x86_64__)
  if (ActiveTier() == Tier::kAvx2) {
    internal::CountPlanAvx2(args);
    return;
  }
#endif
  // Scalar and SSE2 tiers: the lane-striped loop is the scalar-code win
  // (vector integer multiply needs SSE4.1+, so there is no distinct SSE2
  // index kernel). Identical totals either way — counts are integers.
  if (args.lane_scratch != nullptr) {
    internal::CountPlanStripedScalar(args);
  } else {
    internal::CountPlanDirectScalar(args);
  }
}

void CountPlanNScalarRef(const CountPlanNArgs& args) {
  internal::CountPlanNDirectScalar(args);
}

void CountPlanN(const CountPlanNArgs& args) {
#if defined(IREDUCT_SIMD_ENABLED) && defined(__x86_64__)
  if (ActiveTier() == Tier::kAvx2) {
    internal::CountPlanNAvx2(args);
    return;
  }
#endif
  if (args.lane_scratch != nullptr) {
    internal::CountPlanNStripedScalar(args);
  } else {
    internal::CountPlanNDirectScalar(args);
  }
}

}  // namespace simd
}  // namespace ireduct
