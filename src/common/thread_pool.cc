#include "common/thread_pool.h"

#include <utility>

namespace ireduct {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      // Drain the queue even when shutting down so ~ThreadPool completes
      // everything that was submitted.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace ireduct
