#include "common/thread_pool.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace ireduct {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
#if IREDUCT_ENABLE_TRACING
  // Wrap the closure with queue-wait and run timing. Done at submit (not in
  // the worker) so the enqueue timestamp rides inside the task itself; the
  // wrapper is only paid when metrics are on.
  if (obs::MetricsRegistry::enabled()) {
    IREDUCT_METRIC_COUNT("thread_pool.tasks", 1);
    task = [inner = std::move(task),
            enqueued = std::chrono::steady_clock::now()] {
      const auto started = std::chrono::steady_clock::now();
      IREDUCT_METRIC_OBSERVE(
          "thread_pool.task_wait_seconds",
          std::chrono::duration<double>(started - enqueued).count());
      inner();
      IREDUCT_METRIC_OBSERVE(
          "thread_pool.task_run_seconds",
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count());
    };
  }
#endif
  size_t depth;
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    depth = queue_.size();
  }
  IREDUCT_METRIC_GAUGE_SET("thread_pool.queue_depth",
                           static_cast<double>(depth));
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      // Drain the queue even when shutting down so ~ThreadPool completes
      // everything that was submitted.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    IREDUCT_METRIC_GAUGE_SET("thread_pool.queue_depth",
                             static_cast<double>(depth));
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace ireduct
