// Deterministic random-number substrate. All stochastic code in the library
// draws from a BitGen so that experiments are reproducible from a seed.
//
// The engine is xoshiro256++ (Blackman & Vigna), seeded via splitmix64. On
// top of the raw engine we provide the samplers the paper's mechanisms need:
// uniform, exponential, Laplace, and exponentials truncated to an interval.
#ifndef IREDUCT_COMMON_RANDOM_H_
#define IREDUCT_COMMON_RANDOM_H_

#include <array>
#include <cstdint>
#include <span>

namespace ireduct {

/// xoshiro256++ pseudo-random engine with distribution helpers.
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with <random> distributions, though the built-in samplers below are
/// preferred (they are deterministic across standard libraries).
class BitGen {
 public:
  using result_type = uint64_t;

  /// Seeds the four-word state from `seed` via splitmix64.
  explicit BitGen(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64-bit output.
  uint64_t operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double Uniform();

  /// Uniform double in (0, 1] — safe as an argument to log().
  double UniformPositive();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Exponential variate with the given mean (= 1/rate). Requires mean > 0.
  double Exponential(double mean);

  /// Laplace variate with location 0 and the given scale. Requires scale > 0.
  double Laplace(double scale);

  /// Laplace variate with location `mu` and scale `scale`.
  double Laplace(double mu, double scale);

  /// Sample from the density ∝ exp(-x / mean) restricted to [lo, hi],
  /// i.e. an exponential (decaying toward +inf) truncated to an interval.
  /// Requires mean > 0 and lo < hi; hi may be +infinity.
  double TruncatedExponential(double mean, double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exact engine state, for checkpoint/resume. Restoring via FromState
  /// continues the stream bit-identically: SaveState followed by any draw
  /// sequence equals FromState(saved) followed by the same sequence.
  std::array<uint64_t, 4> SaveState() const;

  /// Reconstructs a generator at a previously saved state.
  static BitGen FromState(const std::array<uint64_t, 4>& state);

  /// Derives a child generator (substream) by drawing one 64-bit value from
  /// this stream and expanding it through the splitmix64 seeding path.
  /// Forking seeds in a fixed order and handing each fork to one unit of
  /// parallel work (e.g. one query group in a batched iReduct round) makes
  /// the per-unit draws independent of thread count and scheduling, so
  /// single- and multi-threaded runs are bit-identical. Advances this
  /// stream by exactly one draw.
  BitGen Fork();

  /// Fills `out[i] = Laplace(scales[i])` through the vectorized batch
  /// kernels (common/simd_kernels.h). The batch is drawn from four Fork()
  /// substreams (lane i % 4), so this stream advances by exactly
  /// kBatchLanes = 4 draws regardless of the batch size — a *different*
  /// stream than calling Laplace() per element, but deterministic: the
  /// output depends only on this generator's state and `scales`, never on
  /// the SIMD tier, thread count, or machine. Requires
  /// scales.size() == out.size() and every scale > 0.
  void LaplaceBatch(std::span<const double> scales, std::span<double> out);

  /// Batch analogue of Exponential(mean) under the same four-substream
  /// contract as LaplaceBatch. Requires mean > 0.
  void ExponentialBatch(double mean, std::span<double> out);

 private:
  uint64_t s_[4];
};

}  // namespace ireduct

#endif  // IREDUCT_COMMON_RANDOM_H_
