// Monotonic arena for per-round scratch in the hot loops.
//
// The iReduct/iResamp rounds and the sharded counting pass used to allocate
// and free the same-shaped vectors every iteration; the allocator round
// trips showed up directly in the fig08/09 profile. An Arena instead bumps
// a pointer through a retained chunk: Alloc is a pointer add on the steady
// state, Reset() rewinds to empty while *keeping the capacity*, so a loop
// that Resets at the top of each round performs zero heap allocations after
// warm-up.
//
// Lifetime rules (also in docs/PERFORMANCE.md):
//  * Alloc'd memory is valid until the next Reset() or the Arena's
//    destruction — never hand it across a Reset boundary.
//  * Only trivially copyable, trivially destructible types: nothing runs
//    destructors. Alloc returns uninitialized storage; AllocZeroed clears.
//  * An Arena is single-threaded. Concurrent shards each use their own
//    (e.g. one thread_local arena per worker); a function that Resets a
//    thread_local arena must not hold allocations from an enclosing frame
//    of the same thread — keep usage call-local.
//
// Growth that outruns the current chunk falls back to extra chunks; the
// next Reset coalesces everything into one chunk of the high-water size, so
// a mis-sized warm-up round costs one extra allocation, not one per round.
// Chunk allocations and reserved bytes are exported through obs/metrics
// ("arena.chunk_allocs", "arena.reserved_bytes") so regressions in
// allocation discipline are visible in every run report.
#ifndef IREDUCT_COMMON_ARENA_H_
#define IREDUCT_COMMON_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"

namespace ireduct {

class Arena {
 public:
  explicit Arena(size_t initial_bytes = 0) {
    if (initial_bytes > 0) AddChunk(initial_bytes);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `n` objects of T, aligned for T.
  template <typename T>
  T* Alloc(size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena storage runs no constructors or destructors");
    return static_cast<T*>(AllocBytes(n * sizeof(T), alignof(T)));
  }

  /// Zero-initialized span of `n` objects of T.
  template <typename T>
  std::span<T> AllocZeroed(size_t n) {
    T* p = Alloc<T>(n);
    std::memset(static_cast<void*>(p), 0, n * sizeof(T));
    return {p, n};
  }

  /// Rewinds to empty, keeping capacity. If the last cycle spilled into
  /// overflow chunks, re-reserves one chunk of the combined size so the
  /// next cycle is single-chunk.
  void Reset() {
    if (chunks_.size() > 1 || (used_ > 0 && chunks_.empty())) {
      const size_t total = reserved_;
      chunks_.clear();
      reserved_ = 0;
      AddChunk(total);
    }
    cursor_ = chunks_.empty() ? nullptr : chunks_.front().data.get();
    remaining_ = chunks_.empty() ? 0 : chunks_.front().size;
    used_ = 0;
  }

  /// Bytes handed out since the last Reset.
  size_t bytes_used() const { return used_; }
  /// Total capacity across chunks (the high-water footprint).
  size_t bytes_reserved() const { return reserved_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };

  void* AllocBytes(size_t bytes, size_t align) {
    const size_t pad =
        (align - reinterpret_cast<size_t>(cursor_) % align) % align;
    if (pad + bytes > remaining_) {
      // Double the footprint (at least) so repeated spills converge fast.
      AddChunk(bytes > reserved_ ? bytes + reserved_ : reserved_);
      return AllocBytes(bytes, align);
    }
    cursor_ += pad;
    void* p = cursor_;
    cursor_ += bytes;
    remaining_ -= pad + bytes;
    used_ += pad + bytes;
    return p;
  }

  void AddChunk(size_t bytes) {
    constexpr size_t kMinChunk = 4096;
    Chunk c;
    c.size = bytes < kMinChunk ? kMinChunk : bytes;
    c.data = std::make_unique<std::byte[]>(c.size);
    reserved_ += c.size;
    IREDUCT_METRIC_COUNT("arena.chunk_allocs", 1);
    IREDUCT_METRIC_COUNT("arena.reserved_bytes", c.size);
    cursor_ = c.data.get();
    remaining_ = c.size;
    chunks_.push_back(std::move(c));
  }

  std::vector<Chunk> chunks_;
  std::byte* cursor_ = nullptr;
  size_t remaining_ = 0;
  size_t used_ = 0;
  size_t reserved_ = 0;
};

}  // namespace ireduct

#endif  // IREDUCT_COMMON_ARENA_H_
