// Result<T>: value-or-Status, the return type of fallible operations that
// produce a value. Mirrors arrow::Result.
#ifndef IREDUCT_COMMON_RESULT_H_
#define IREDUCT_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ireduct {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Accessing the value of an errored Result aborts.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so that `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit so that
  /// `return Status::InvalidArgument(...)` works).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ireduct

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status out of the enclosing function.
#define IREDUCT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define IREDUCT_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  IREDUCT_ASSIGN_OR_RETURN_IMPL(IREDUCT_CONCAT_(_result_, __LINE__), lhs, \
                                rexpr)

#define IREDUCT_CONCAT_INNER_(a, b) a##b
#define IREDUCT_CONCAT_(a, b) IREDUCT_CONCAT_INNER_(a, b)

#endif  // IREDUCT_COMMON_RESULT_H_
