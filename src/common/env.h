// Environment-variable knobs shared by the bench harnesses and the
// evaluation layer (TRIALS, CENSUS_ROWS, IREDUCT_STEPS, IREDUCT_THREADS...).
#ifndef IREDUCT_COMMON_ENV_H_
#define IREDUCT_COMMON_ENV_H_

#include <cstdint>

namespace ireduct {

/// Reads a positive integer environment variable, or returns `fallback` if
/// unset/invalid (non-numeric, trailing garbage, or <= 0).
int64_t EnvInt64(const char* name, int64_t fallback);

/// The IREDUCT_THREADS knob: worker count for the evaluation layer's
/// parallel paths (fused marginal evaluation, parallel trials). Defaults
/// to 1 — every parallel path is bit-identical to its sequential
/// counterpart, so the knob only trades wall-clock.
int EnvThreads();

}  // namespace ireduct

#endif  // IREDUCT_COMMON_ENV_H_
