#include "common/env.h"

#include <cstdlib>

namespace ireduct {

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed <= 0) return fallback;
  return static_cast<int64_t>(parsed);
}

int EnvThreads() {
  return static_cast<int>(EnvInt64("IREDUCT_THREADS", 1));
}

}  // namespace ireduct
