// Minimal CHECK macros for internal invariants. These guard programmer
// errors, not user input — user input errors are reported via Status.
#ifndef IREDUCT_COMMON_LOGGING_H_
#define IREDUCT_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define IREDUCT_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

// Debug-only invariant check: active in debug builds, compiled out (with
// the condition left unevaluated but still parsed) under NDEBUG, so
// release/bench binaries don't pay for invariants on hot paths.
#ifdef NDEBUG
#define IREDUCT_DCHECK(cond)                  \
  do {                                        \
    if (false) {                              \
      static_cast<void>(cond);                \
    }                                         \
  } while (false)
#else
#define IREDUCT_DCHECK(cond) IREDUCT_CHECK(cond)
#endif

#endif  // IREDUCT_COMMON_LOGGING_H_
