// Minimal CHECK macros for internal invariants. These guard programmer
// errors, not user input — user input errors are reported via Status.
#ifndef IREDUCT_COMMON_LOGGING_H_
#define IREDUCT_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define IREDUCT_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define IREDUCT_DCHECK(cond) IREDUCT_CHECK(cond)

#endif  // IREDUCT_COMMON_LOGGING_H_
