// 10-fold cross-validation of Naive Bayes models trained on noisy
// marginals (paper Section 6.5): for each fold, the classifier marginals
// are computed over the other nine folds, perturbed by a caller-supplied
// mechanism, and the resulting model is scored on the held-out fold.
#ifndef IREDUCT_CLASSIFIER_CROSS_VALIDATION_H_
#define IREDUCT_CLASSIFIER_CROSS_VALIDATION_H_

#include <functional>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/dataset.h"
#include "marginals/marginal_workload.h"

namespace ireduct {

/// Perturbs a training-fold workload: returns the published (noisy)
/// answers, one per query. An identity function yields the noise-free
/// reference line of Figure 11.
using PublishFn =
    std::function<Result<std::vector<double>>(const MarginalWorkload&)>;

struct CrossValidationResult {
  /// Mean held-out classification accuracy over the folds.
  double mean_accuracy = 0;
  /// Mean overall error (Definition 6) of the noisy training marginals,
  /// using `delta` as the sanity bound — the x-axis companion Figure 10
  /// reports.
  double mean_overall_error = 0;
  int folds = 0;
};

/// Runs k-fold cross-validation of a Naive Bayes classifier on
/// `class_attr`, publishing each fold's training marginals through
/// `publish`. `delta` is the sanity bound used for the reported overall
/// error (the paper sets it relative to the training set size).
Result<CrossValidationResult> CrossValidateClassifier(
    const Dataset& dataset, size_t class_attr, int folds, double delta,
    const PublishFn& publish, BitGen& gen);

}  // namespace ireduct

#endif  // IREDUCT_CLASSIFIER_CROSS_VALIDATION_H_
