#include "classifier/cross_validation.h"

#include "classifier/naive_bayes.h"
#include "eval/metrics.h"
#include "marginals/marginal_set.h"

namespace ireduct {

Result<CrossValidationResult> CrossValidateClassifier(
    const Dataset& dataset, size_t class_attr, int folds, double delta,
    const PublishFn& publish, BitGen& gen) {
  if (folds < 2) {
    return Status::InvalidArgument("need at least two folds");
  }
  IREDUCT_ASSIGN_OR_RETURN(std::vector<MarginalSpec> specs,
                           ClassifierSpecs(dataset.schema(), class_attr));
  IREDUCT_ASSIGN_OR_RETURN(std::vector<uint8_t> fold_of,
                           dataset.FoldAssignment(folds, gen));

  CrossValidationResult result;
  result.folds = folds;
  for (int f = 0; f < folds; ++f) {
    std::vector<uint32_t> train_rows, test_rows;
    for (uint32_t r = 0; r < dataset.num_rows(); ++r) {
      (fold_of[r] == f ? test_rows : train_rows).push_back(r);
    }
    IREDUCT_ASSIGN_OR_RETURN(std::vector<Marginal> marginals,
                             ComputeMarginals(dataset, specs, train_rows));
    IREDUCT_ASSIGN_OR_RETURN(MarginalWorkload workload,
                             MarginalWorkload::Create(std::move(marginals)));
    IREDUCT_ASSIGN_OR_RETURN(std::vector<double> published,
                             publish(workload));
    result.mean_overall_error +=
        OverallError(workload.workload(), published, delta);
    IREDUCT_ASSIGN_OR_RETURN(std::vector<Marginal> noisy,
                             workload.ToMarginals(published));
    IREDUCT_ASSIGN_OR_RETURN(
        NaiveBayesModel model,
        NaiveBayesModel::FromMarginals(dataset.schema(), class_attr, noisy));
    result.mean_accuracy += model.Accuracy(dataset, test_rows);
  }
  result.mean_accuracy /= folds;
  result.mean_overall_error /= folds;
  return result;
}

}  // namespace ireduct
