// Naive Bayes classification from (noisy) marginals (paper Section 6.5).
//
// The model needs exactly the ClassifierSpecs marginal set: the class
// attribute's 1D marginal for the prior and one {feature, class} 2D
// marginal per feature for the likelihoods. Noisy counts are first
// post-processed with y <- max{y + 1, 1} (following the paper, which cites
// Cormode [6]); the +1 doubles as a Laplace smoother for noise-free input.
#ifndef IREDUCT_CLASSIFIER_NAIVE_BAYES_H_
#define IREDUCT_CLASSIFIER_NAIVE_BAYES_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "marginals/marginal.h"

namespace ireduct {

/// A trained Naive Bayes model over categorical attributes.
class NaiveBayesModel {
 public:
  /// Builds a model from marginals laid out as produced by
  /// ClassifierSpecs(schema, class_attr): marginals[0] is the 1D class
  /// marginal; marginals[1..] are {feature, class} 2D marginals covering
  /// every non-class attribute exactly once, in attribute order.
  static Result<NaiveBayesModel> FromMarginals(
      const Schema& schema, size_t class_attr,
      const std::vector<Marginal>& marginals);

  size_t class_attr() const { return class_attr_; }
  size_t num_classes() const { return num_classes_; }

  /// Predicts the class for a full row of attribute values (the class
  /// attribute's position is ignored).
  uint16_t Predict(std::span<const uint16_t> row) const;

  /// Fraction of the given rows (all rows if `rows` is empty) whose class
  /// attribute the model predicts correctly.
  double Accuracy(const Dataset& dataset,
                  std::span<const uint32_t> rows = {}) const;

 private:
  NaiveBayesModel() = default;

  size_t class_attr_ = 0;
  size_t num_classes_ = 0;
  std::vector<double> log_prior_;  // [class]
  // One table per feature attribute (schema order, class attribute skipped):
  // log P(value | class), flattened as value * num_classes + class.
  struct FeatureTable {
    uint32_t attribute = 0;
    std::vector<double> log_likelihood;
  };
  std::vector<FeatureTable> features_;
};

}  // namespace ireduct

#endif  // IREDUCT_CLASSIFIER_NAIVE_BAYES_H_
