#include "classifier/naive_bayes.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/numeric.h"

namespace ireduct {

namespace {

// The paper's post-processing for noisy counts: y <- max{y + 1, 1}.
double PostProcessCount(double y) { return std::fmax(y + 1.0, 1.0); }

}  // namespace

Result<NaiveBayesModel> NaiveBayesModel::FromMarginals(
    const Schema& schema, size_t class_attr,
    const std::vector<Marginal>& marginals) {
  if (class_attr >= schema.num_attributes()) {
    return Status::OutOfRange("class attribute index out of range");
  }
  if (marginals.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "expected one class marginal plus one marginal per feature");
  }
  const Marginal& class_marginal = marginals[0];
  if (class_marginal.spec().attributes !=
      std::vector<uint32_t>{static_cast<uint32_t>(class_attr)}) {
    return Status::InvalidArgument(
        "marginals[0] must be the 1D class marginal");
  }

  NaiveBayesModel model;
  model.class_attr_ = class_attr;
  model.num_classes_ = schema.attribute(class_attr).domain_size;

  // Prior from the post-processed class counts.
  std::vector<double> prior(model.num_classes_);
  KahanSum prior_total;
  for (size_t c = 0; c < model.num_classes_; ++c) {
    prior[c] = PostProcessCount(class_marginal.count(c));
    prior_total.Add(prior[c]);
  }
  model.log_prior_.resize(model.num_classes_);
  for (size_t c = 0; c < model.num_classes_; ++c) {
    model.log_prior_[c] = std::log(prior[c]) - std::log(prior_total.value());
  }

  // Likelihood tables from the {feature, class} marginals, normalized per
  // class over the post-processed counts of the same marginal.
  size_t next = 1;
  for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
    if (a == class_attr) continue;
    if (next >= marginals.size()) {
      return Status::InvalidArgument("missing feature marginal");
    }
    const Marginal& m = marginals[next++];
    if (m.spec().attributes !=
        std::vector<uint32_t>{a, static_cast<uint32_t>(class_attr)}) {
      return Status::InvalidArgument(
          "feature marginals must be {feature, class} in attribute order");
    }
    const uint32_t domain = schema.attribute(a).domain_size;
    FeatureTable table;
    table.attribute = a;
    table.log_likelihood.resize(static_cast<size_t>(domain) *
                                model.num_classes_);
    // Per-class totals of the post-processed table.
    std::vector<double> class_total(model.num_classes_, 0.0);
    for (uint32_t v = 0; v < domain; ++v) {
      for (size_t c = 0; c < model.num_classes_; ++c) {
        class_total[c] +=
            PostProcessCount(m.count(static_cast<size_t>(v) *
                                         model.num_classes_ +
                                     c));
      }
    }
    for (uint32_t v = 0; v < domain; ++v) {
      for (size_t c = 0; c < model.num_classes_; ++c) {
        const size_t idx = static_cast<size_t>(v) * model.num_classes_ + c;
        table.log_likelihood[idx] =
            std::log(PostProcessCount(m.count(idx))) -
            std::log(class_total[c]);
      }
    }
    model.features_.push_back(std::move(table));
  }
  return model;
}

uint16_t NaiveBayesModel::Predict(std::span<const uint16_t> row) const {
  IREDUCT_DCHECK(!log_prior_.empty());
  uint16_t best_class = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < num_classes_; ++c) {
    double score = log_prior_[c];
    for (const FeatureTable& f : features_) {
      const uint16_t v = row[f.attribute];
      score += f.log_likelihood[static_cast<size_t>(v) * num_classes_ + c];
    }
    if (score > best_score) {
      best_score = score;
      best_class = static_cast<uint16_t>(c);
    }
  }
  return best_class;
}

double NaiveBayesModel::Accuracy(const Dataset& dataset,
                                 std::span<const uint32_t> rows) const {
  const size_t n = rows.empty() ? dataset.num_rows() : rows.size();
  IREDUCT_DCHECK(n > 0);
  std::vector<uint16_t> row(dataset.num_columns());
  size_t correct = 0;
  for (size_t k = 0; k < n; ++k) {
    const size_t r = rows.empty() ? k : rows[k];
    for (size_t c = 0; c < dataset.num_columns(); ++c) {
      row[c] = dataset.value(r, c);
    }
    if (Predict(row) == row[class_attr_]) ++correct;
  }
  return static_cast<double>(correct) / n;
}

}  // namespace ireduct
