// Columnar dataset engine benchmark: load-path and streaming-evaluation
// acceptance numbers for the binary columnar container (data/columnar.h).
//
// Section 1 — load: the cached census table is written as CSV, as a
// bit-packed columnar file, and as a zero-copy-layout columnar file; each
// is then loaded back (first read = cold-ish, best of TRIALS = warm) and
// the fingerprints are compared. The acceptance bar is a >=
// COLUMNAR_MIN_LOAD_SPEEDUP speedup of the warm zero-copy load over the
// CSV parse (default 5; 0 disables).
//
// Section 2 — streaming: the all-2-way true-table task is evaluated with
// MarginalSetEvaluator::Compute over the in-memory dataset and with
// ComputeStreaming over columnar files, swept over thread count × block
// size. Every result is compared byte-for-byte (memcmp of the count
// doubles) against per-spec Marginal::Compute; the bench exits nonzero on
// any mismatch. The acceptance bar is the best zero-copy streaming run
// landing within COLUMNAR_MAX_STREAM_RATIO of the in-memory pass at the
// same thread count (default 1.25; 0 disables).
//
// Section 3 — profiles: file sizes and load times for the generation
// profiles (census / zipf-heavy / sparse-events / wide-schema), showing
// how the packed and RLE encodings respond to different data shapes.
//
// Results land in BENCH_COLUMNAR.json in the working directory.
//
// Environment knobs:
//   CENSUS_ROWS                Section 1/2 dataset size (default 400000).
//   TRIALS                     timed repetitions per point (default 3).
//   COLUMNAR_THREADS           comma-separated Section 2 thread counts
//                              (default "1,2,8").
//   COLUMNAR_BLOCK_ROWS        comma-separated Section 2 block sizes
//                              (default "16384,65536").
//   COLUMNAR_PROFILE_ROWS      Section 3 rows per profile (default 200000).
//   COLUMNAR_MIN_LOAD_SPEEDUP  Section 1 gate; 0 disables (default 5).
//   COLUMNAR_MAX_STREAM_RATIO  Section 2 gate; 0 disables (default 1.25).
#include <unistd.h>

#include <sys/stat.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "data/census_generator.h"
#include "data/columnar.h"
#include "data/csv.h"
#include "eval/table_printer.h"
#include "marginals/marginal_evaluator.h"
#include "marginals/marginal_set.h"
#include "obs/json.h"

namespace {

using namespace ireduct;

std::vector<int> IntList(const char* name, std::vector<int> fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  std::vector<int> values;
  std::stringstream ss{std::string(env)};
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const long long v = std::atoll(tok.c_str());
    if (v > 0) values.push_back(static_cast<int>(v));
  }
  return values.empty() ? fallback : values;
}

// Gate knobs with "0 disables" semantics — an explicit 0 must not fall
// back to the default.
double EnvGate(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(env, &end);
  if (end == env || *end != '\0' || parsed < 0) return fallback;
  return parsed;
}

uint64_t EnvRows(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  const long long v = std::atoll(env);
  return v > 0 ? static_cast<uint64_t>(v) : fallback;
}

double Seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

uint64_t FileBytes(const std::string& path) {
  struct stat st{};
  IREDUCT_CHECK(::stat(path.c_str(), &st) == 0);
  return static_cast<uint64_t>(st.st_size);
}

// Temp workspace for the generated files; removed on exit.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/columnar_io.XXXXXX";
    IREDUCT_CHECK(::mkdtemp(tmpl) != nullptr);
    dir_ = tmpl;
  }
  ~TempDir() {
    for (const std::string& path : files_) ::unlink(path.c_str());
    ::rmdir(dir_.c_str());
  }
  std::string Path(const std::string& name) {
    files_.push_back(dir_ + "/" + name);
    return files_.back();
  }

 private:
  std::string dir_;
  std::vector<std::string> files_;
};

// Times `load` TRIALS times; records the first (cold-ish — the page cache
// is still warm from the write, but no parse state is) and best (warm)
// durations, checking every loaded dataset's fingerprint.
struct LoadTiming {
  double first_seconds = 0;
  double best_seconds = 0;
};

template <typename Fn>
LoadTiming TimeLoad(const Fn& load, uint64_t want_fingerprint) {
  LoadTiming t;
  const int trials = std::max(1, bench::Trials());
  for (int i = 0; i < trials; ++i) {
    const auto start = std::chrono::steady_clock::now();
    Result<Dataset> dataset = load();
    const double s = Seconds(start);
    IREDUCT_CHECK(dataset.ok());
    IREDUCT_CHECK(dataset->Fingerprint() == want_fingerprint);
    if (i == 0) t.first_seconds = s;
    t.best_seconds = i == 0 ? s : std::min(t.best_seconds, s);
  }
  return t;
}

void WriteLoadTiming(obs::JsonWriter& writer, const std::string& key,
                     const LoadTiming& t, uint64_t bytes) {
  writer.Key(key);
  writer.BeginObject();
  writer.Key("file_bytes");
  writer.UInt(bytes);
  writer.Key("first_seconds");
  writer.Double(t.first_seconds);
  writer.Key("best_seconds");
  writer.Double(t.best_seconds);
  writer.EndObject();
}

bool RunLoadSection(obs::JsonWriter& writer, TempDir& tmp,
                    const Dataset& dataset) {
  const uint64_t fingerprint = dataset.Fingerprint();
  const std::string csv_path = tmp.Path("census.csv");
  const std::string packed_path = tmp.Path("census.col");
  const std::string zc_path = tmp.Path("census_zc.col");
  IREDUCT_CHECK(WriteCsv(dataset, csv_path).ok());
  IREDUCT_CHECK(WriteColumnar(dataset, packed_path).ok());
  ColumnarWriteOptions zc;
  zc.zero_copy_layout = true;
  IREDUCT_CHECK(WriteColumnar(dataset, zc_path, zc).ok());

  const Schema& schema = dataset.schema();
  const LoadTiming csv_t = TimeLoad(
      [&] { return ReadCsv(schema, csv_path); }, fingerprint);
  const LoadTiming packed_t =
      TimeLoad([&] { return ReadColumnar(packed_path); }, fingerprint);
  const LoadTiming zc_t =
      TimeLoad([&] { return ReadColumnar(zc_path); }, fingerprint);

  const double speedup =
      zc_t.best_seconds > 0 ? csv_t.best_seconds / zc_t.best_seconds : 0.0;
  const double min_speedup = EnvGate("COLUMNAR_MIN_LOAD_SPEEDUP", 5);
  const bool ok = min_speedup <= 0 || speedup >= min_speedup;

  writer.Key("load");
  writer.BeginObject();
  writer.Key("rows");
  writer.UInt(dataset.num_rows());
  writer.Key("fingerprint");
  writer.UInt(fingerprint);
  WriteLoadTiming(writer, "csv", csv_t, FileBytes(csv_path));
  WriteLoadTiming(writer, "packed", packed_t, FileBytes(packed_path));
  WriteLoadTiming(writer, "zero_copy", zc_t, FileBytes(zc_path));
  writer.Key("load_speedup");
  writer.Double(speedup);
  writer.Key("min_load_speedup");
  writer.Double(min_speedup);
  writer.EndObject();

  TablePrinter table({"format", "bytes", "first_s", "warm_s"});
  table.AddRow({"csv", std::to_string(FileBytes(csv_path)),
                TablePrinter::Cell(csv_t.first_seconds, 4),
                TablePrinter::Cell(csv_t.best_seconds, 4)});
  table.AddRow({"packed", std::to_string(FileBytes(packed_path)),
                TablePrinter::Cell(packed_t.first_seconds, 4),
                TablePrinter::Cell(packed_t.best_seconds, 4)});
  table.AddRow({"zero-copy", std::to_string(FileBytes(zc_path)),
                TablePrinter::Cell(zc_t.first_seconds, 4),
                TablePrinter::Cell(zc_t.best_seconds, 4)});
  std::cout << "Dataset load: CSV parse vs columnar decode vs zero-copy "
               "mmap (" << dataset.num_rows() << " rows)\n\n";
  table.Print(std::cout);
  std::cout << "\nwarm zero-copy load speedup over CSV: " << speedup
            << "x (required >= " << min_speedup << ")\n\n";
  if (!ok) {
    std::cerr << "LOAD SPEEDUP FAILURE: " << speedup << "x < required "
              << min_speedup << "x\n";
  }
  return ok;
}

bool SameCounts(const std::vector<Marginal>& a,
                const std::vector<Marginal>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].num_cells() != b[i].num_cells()) return false;
    if (std::memcmp(a[i].counts().data(), b[i].counts().data(),
                    a[i].num_cells() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

struct StreamResult {
  bool parity_ok = true;
  bool ratio_ok = true;
};

StreamResult RunStreamingSection(obs::JsonWriter& writer, TempDir& tmp,
                                 const Dataset& dataset) {
  StreamResult result;
  auto specs = AllKWaySpecs(dataset.schema(), 2);
  IREDUCT_CHECK(specs.ok());
  auto evaluator = MarginalSetEvaluator::Create(dataset.schema(), *specs);
  IREDUCT_CHECK(evaluator.ok());

  // Per-spec reference tables — the parity anchor for every path below.
  std::vector<Marginal> reference;
  reference.reserve(specs->size());
  for (const MarginalSpec& spec : *specs) {
    auto m = Marginal::Compute(dataset, spec);
    IREDUCT_CHECK(m.ok());
    reference.push_back(std::move(*m));
  }

  const std::vector<int> thread_list =
      IntList("COLUMNAR_THREADS", {1, 2, 8});
  const std::vector<int> block_list =
      IntList("COLUMNAR_BLOCK_ROWS", {16'384, 65'536});
  const int trials = std::max(1, bench::Trials());

  // One zero-copy and one packed file per block size: block geometry is a
  // write-time property.
  struct StreamFile {
    int block_rows;
    bool zero_copy;
    ColumnarFile file;
  };
  std::vector<StreamFile> files;
  for (const int block_rows : block_list) {
    for (const bool zero_copy : {true, false}) {
      ColumnarWriteOptions options;
      options.block_rows = static_cast<uint32_t>(block_rows);
      options.zero_copy_layout = zero_copy;
      const std::string path =
          tmp.Path("stream_" + std::to_string(block_rows) +
                   (zero_copy ? "_zc.col" : "_packed.col"));
      IREDUCT_CHECK(WriteColumnar(dataset, path, options).ok());
      auto file = ColumnarFile::Open(path);
      IREDUCT_CHECK(file.ok());
      files.push_back({block_rows, zero_copy, std::move(*file)});
    }
  }

  TablePrinter table({"threads", "block_rows", "layout", "inmem_s",
                      "stream_s", "ratio"});
  double best_zc_ratio = -1;
  writer.Key("streaming");
  writer.BeginArray();
  for (const int threads : thread_list) {
    ThreadPool pool(threads);
    ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;

    double inmem_s = 0;
    for (int i = 0; i < trials; ++i) {
      const auto start = std::chrono::steady_clock::now();
      auto inmem = evaluator->Compute(dataset, {}, pool_ptr);
      const double s = Seconds(start);
      IREDUCT_CHECK(inmem.ok());
      if (!SameCounts(reference, *inmem)) {
        std::cerr << "PARITY FAILURE: in-memory fused != per-marginal at "
                  << threads << " threads\n";
        result.parity_ok = false;
      }
      inmem_s = i == 0 ? s : std::min(inmem_s, s);
    }

    for (const StreamFile& sf : files) {
      double stream_s = 0;
      for (int i = 0; i < trials; ++i) {
        const auto start = std::chrono::steady_clock::now();
        auto streamed = evaluator->ComputeStreaming(sf.file, pool_ptr);
        const double s = Seconds(start);
        IREDUCT_CHECK(streamed.ok());
        if (!SameCounts(reference, *streamed)) {
          std::cerr << "PARITY FAILURE: streaming != per-marginal at "
                    << threads << " threads, block_rows=" << sf.block_rows
                    << ", layout=" << (sf.zero_copy ? "zero-copy" : "packed")
                    << "\n";
          result.parity_ok = false;
        }
        stream_s = i == 0 ? s : std::min(stream_s, s);
      }
      const double ratio = inmem_s > 0 ? stream_s / inmem_s : 0.0;
      if (sf.zero_copy && (best_zc_ratio < 0 || ratio < best_zc_ratio)) {
        best_zc_ratio = ratio;
      }
      const char* layout = sf.zero_copy ? "zero-copy" : "packed";
      table.AddRow({std::to_string(threads), std::to_string(sf.block_rows),
                    layout, TablePrinter::Cell(inmem_s, 4),
                    TablePrinter::Cell(stream_s, 4),
                    TablePrinter::Cell(ratio, 3)});
      writer.BeginObject();
      writer.Key("threads");
      writer.UInt(static_cast<uint64_t>(threads));
      writer.Key("block_rows");
      writer.UInt(static_cast<uint64_t>(sf.block_rows));
      writer.KV("layout", layout);
      writer.Key("inmem_seconds");
      writer.Double(inmem_s);
      writer.Key("stream_seconds");
      writer.Double(stream_s);
      writer.Key("ratio");
      writer.Double(ratio);
      writer.EndObject();
    }
  }
  writer.EndArray();

  const double max_ratio = EnvGate("COLUMNAR_MAX_STREAM_RATIO", 1.25);
  result.ratio_ok =
      max_ratio <= 0 || (best_zc_ratio >= 0 && best_zc_ratio <= max_ratio);
  writer.Key("best_zero_copy_stream_ratio");
  writer.Double(best_zc_ratio);
  writer.Key("max_stream_ratio");
  writer.Double(max_ratio);

  std::cout << "Streaming vs in-memory all-2-way evaluation "
               "(memcmp-identical outputs enforced)\n\n";
  table.Print(std::cout);
  std::cout << "\nbest zero-copy streaming ratio: " << best_zc_ratio
            << "x of in-memory (required <= " << max_ratio << ")\n\n";
  if (!result.ratio_ok) {
    std::cerr << "STREAMING RATIO FAILURE: " << best_zc_ratio
              << "x > allowed " << max_ratio << "x\n";
  }
  return result;
}

void RunProfileSection(obs::JsonWriter& writer, TempDir& tmp) {
  const uint64_t rows = EnvRows("COLUMNAR_PROFILE_ROWS", 200'000);
  TablePrinter table({"profile", "csv_bytes", "packed_bytes", "zc_bytes",
                      "csv_s", "packed_s", "zc_s"});
  writer.Key("profiles");
  writer.BeginArray();
  for (const DataProfile profile :
       {DataProfile::kCensus, DataProfile::kZipfHeavy,
        DataProfile::kSparseEvents, DataProfile::kWideSchema}) {
    const char* name = DataProfileName(profile);
    ProfileConfig config;
    config.profile = profile;
    config.rows = rows;
    auto dataset = GenerateProfile(config);
    IREDUCT_CHECK(dataset.ok());
    const uint64_t fingerprint = dataset->Fingerprint();

    const std::string csv_path = tmp.Path(std::string(name) + ".csv");
    const std::string packed_path = tmp.Path(std::string(name) + ".col");
    const std::string zc_path = tmp.Path(std::string(name) + "_zc.col");
    IREDUCT_CHECK(WriteCsv(*dataset, csv_path).ok());
    IREDUCT_CHECK(WriteColumnar(*dataset, packed_path).ok());
    ColumnarWriteOptions zc;
    zc.zero_copy_layout = true;
    IREDUCT_CHECK(WriteColumnar(*dataset, zc_path, zc).ok());

    const Schema& schema = dataset->schema();
    const LoadTiming csv_t =
        TimeLoad([&] { return ReadCsv(schema, csv_path); }, fingerprint);
    const LoadTiming packed_t =
        TimeLoad([&] { return ReadColumnar(packed_path); }, fingerprint);
    const LoadTiming zc_t =
        TimeLoad([&] { return ReadColumnar(zc_path); }, fingerprint);

    table.AddRow({name, std::to_string(FileBytes(csv_path)),
                  std::to_string(FileBytes(packed_path)),
                  std::to_string(FileBytes(zc_path)),
                  TablePrinter::Cell(csv_t.best_seconds, 4),
                  TablePrinter::Cell(packed_t.best_seconds, 4),
                  TablePrinter::Cell(zc_t.best_seconds, 4)});
    writer.BeginObject();
    writer.KV("profile", name);
    writer.Key("rows");
    writer.UInt(rows);
    writer.Key("fingerprint");
    writer.UInt(fingerprint);
    WriteLoadTiming(writer, "csv", csv_t, FileBytes(csv_path));
    WriteLoadTiming(writer, "packed", packed_t, FileBytes(packed_path));
    WriteLoadTiming(writer, "zero_copy", zc_t, FileBytes(zc_path));
    writer.EndObject();
  }
  writer.EndArray();

  std::cout << "Generation profiles: file sizes and warm load times ("
            << rows << " rows each)\n\n";
  table.Print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  bench::RegisterStandardMetrics();
  TempDir tmp;
  const Dataset& dataset = bench::GetCensus(CensusKind::kBrazil);

  std::string json;
  obs::JsonWriter writer(&json);
  writer.BeginObject();
  writer.KV("bench", "columnar_io");
  bench::WriteHostInfo(writer);
  const bool load_ok = RunLoadSection(writer, tmp, dataset);
  const StreamResult stream = RunStreamingSection(writer, tmp, dataset);
  RunProfileSection(writer, tmp);
  writer.Key("load_ok");
  writer.Bool(load_ok);
  writer.Key("stream_ok");
  writer.Bool(stream.ratio_ok);
  writer.Key("parity_ok");
  writer.Bool(stream.parity_ok);
  writer.EndObject();
  std::ofstream out("BENCH_COLUMNAR.json");
  out << json << "\n";
  std::cout << "Wrote BENCH_COLUMNAR.json\n";
  bench::EmitMetricsSnapshot("columnar_io");
  return load_ok && stream.ratio_ok && stream.parity_ok ? 0 : 1;
}
