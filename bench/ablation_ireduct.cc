// Ablations of iReduct's design knobs (the choices DESIGN.md calls out):
//
// Part A — step size λΔ: the paper runs λmax/λΔ = 10^5 reduction steps;
// we show the overall error flattens far earlier, which is why the figure
// benches default to a few hundred steps (IREDUCT_STEPS).
//
// Part B — PickQueries policy: the Section 5.3 benefit/cost heuristic
// (normalized per Definition 6) against (i) the literal printed Equation
// 15 without the 1/|G_g| factor, (ii) round-robin, and (iii) "largest
// scale first". All are equally private (none touches true answers); the
// heuristic should win or tie.
#include <iostream>
#include <vector>

#include "algorithms/ireduct.h"
#include "algorithms/selection.h"
#include "bench_util.h"
#include "common/numeric.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"

namespace {

using namespace ireduct;

// Literal Equation 15: benefit λΔ·Σ 1/max{y,δ} (no per-group averaging).
size_t PickPrintedEq15(const Workload& w, std::span<const double> noisy,
                       std::span<const double> scales,
                       std::span<const uint8_t> active, double delta,
                       double lambda_delta) {
  size_t best = kNoGroup;
  double best_ratio = -1;
  for (size_t g = 0; g < w.num_groups(); ++g) {
    if (!active[g] || !(scales[g] > lambda_delta)) continue;
    KahanSum weight;
    for (uint32_t i = w.group(g).begin; i < w.group(g).end; ++i) {
      weight.Add(1.0 / std::fmax(noisy[i], delta));
    }
    const double coeff = w.group(g).sensitivity_coeff;
    const double benefit = lambda_delta * weight.value();
    const double cost =
        coeff / (scales[g] - lambda_delta) - coeff / scales[g];
    if (benefit / cost > best_ratio) {
      best_ratio = benefit / cost;
      best = g;
    }
  }
  return best;
}

size_t PickRoundRobin(const Workload& w, std::span<const double>,
                      std::span<const double> scales,
                      std::span<const uint8_t> active, double,
                      double lambda_delta) {
  static size_t next = 0;
  for (size_t tries = 0; tries < w.num_groups(); ++tries) {
    const size_t g = (next++) % w.num_groups();
    if (active[g] && scales[g] > lambda_delta) return g;
  }
  return kNoGroup;
}

size_t PickLargestScale(const Workload& w, std::span<const double>,
                        std::span<const double> scales,
                        std::span<const uint8_t> active, double,
                        double lambda_delta) {
  size_t best = kNoGroup;
  double best_scale = -1;
  for (size_t g = 0; g < w.num_groups(); ++g) {
    if (active[g] && scales[g] > lambda_delta && scales[g] > best_scale) {
      best_scale = scales[g];
      best = g;
    }
  }
  return best;
}

}  // namespace

int main() {
  using namespace ireduct::bench;

  const CensusSetup setup = BuildCensusSetup(CensusKind::kBrazil, 1);
  const Workload& w = setup.workload.workload();
  const double delta = setup.delta;
  const double epsilon = 0.01;
  const double lambda_max = setup.lambda_max;

  auto run = [&](double steps, PickGroupFn pick) {
    MechanismFn fn = [&, steps, pick](const Workload& workload, BitGen& gen)
        -> Result<std::vector<double>> {
      IReductParams p;
      p.epsilon = epsilon;
      p.delta = delta;
      p.lambda_max = lambda_max;
      p.lambda_delta = lambda_max / steps;
      IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out,
                               RunIReduct(workload, p, gen, pick));
      return std::move(out.answers);
    };
    return MeasureOverallError(w, fn, delta, 1300);
  };

  // Part A: λΔ resolution sweep.
  {
    TablePrinter table({"steps (lambda_max/lambda_delta)", "overall_error",
                        "stddev"});
    for (double steps : {10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0}) {
      const TrialAggregate agg = run(steps, nullptr);
      table.AddRow({TablePrinter::Cell(steps, 5),
                    TablePrinter::Cell(agg.mean, 5),
                    TablePrinter::Cell(agg.stddev, 3)});
    }
    std::cout << "Part A: iReduct error vs reduction resolution (1D "
                 "Brazil, eps=0.01; paper runs 1e5 steps)\n\n";
    table.Print(std::cout);
    std::cout << '\n';
  }

  // Part B: PickQueries policy comparison at the default resolution.
  {
    const double steps = IReductSteps();
    TablePrinter table({"policy", "overall_error", "stddev"});
    struct Policy {
      const char* name;
      PickGroupFn fn;
    };
    const std::vector<Policy> policies{
        {"Sec 5.3 heuristic (Def 6-normalized)", nullptr},
        {"printed Eq 15 (no 1/|G| factor)", PickPrintedEq15},
        {"max relative error (Sec 4.3 variant)",
         [](const Workload& w, std::span<const double> noisy,
            std::span<const double> scales, std::span<const uint8_t> act,
            double delta, double lambda_delta) {
           return PickGroupMaxRelativeError(w, noisy, scales, act, delta,
                                            lambda_delta);
         }},
        {"round robin", PickRoundRobin},
        {"largest scale first", PickLargestScale},
    };
    for (const Policy& policy : policies) {
      const TrialAggregate agg = run(steps, policy.fn);
      table.AddRow({policy.name, TablePrinter::Cell(agg.mean, 5),
                    TablePrinter::Cell(agg.stddev, 3)});
    }
    std::cout << "Part B: PickQueries policies (1D Brazil, eps=0.01)\n\n";
    table.Print(std::cout);
  }
  bench::EmitMetricsSnapshot("ablation_ireduct");
  return 0;
}
