// The strategy-matrix mechanism family vs the paper's relative-error
// mechanisms, on both workload shapes the library serves:
//
//   Task A — 101 prefix ranges over the Age histogram (Brazil). The
//     workload carries a linear view, so every matrix mechanism answers
//     through the histogram domain (noise strategy A, reconstruct,
//     W·x̂); overlapping ranges are where tree/wavelet strategies earn
//     their keep and where iReduct's per-query scales pay the exact
//     column-bound sensitivity instead of the old additive one.
//
//   Task B — the Age, Gender and Age×Gender marginals lowered onto
//     their joint domain (MarginalWorkload::ToLinear): 0/1 cell
//     indicators under move semantics. Point counts have no range
//     structure, so the identity strategy and iReduct's direct
//     reallocation should front-run the tree here.
//
// Rows report overall relative error (Definition 6) over TRIALS seeded
// runs. Results land in BENCH_STRATEGY.json in the working directory
// (host-stamped, one entry per task × mechanism) — the artifact the CI
// parity-smoke job uploads.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/ireduct.h"
#include "algorithms/iresamp.h"
#include "algorithms/mechanism_registry.h"
#include "bench_util.h"
#include "common/logging.h"
#include "eval/table_printer.h"
#include "marginals/marginal.h"
#include "marginals/marginal_set.h"
#include "marginals/marginal_workload.h"
#include "obs/json.h"
#include "queries/linear_workload.h"
#include "queries/range_workload.h"

namespace {

using namespace ireduct;
using namespace ireduct::bench;

std::string Spec(const std::string& base, double epsilon) {
  std::ostringstream os;
  os.precision(17);
  os << base << (base.find(':') == std::string::npos ? ":" : ",")
     << "epsilon=" << epsilon;
  return os.str();
}

MechanismFn Registry(const std::string& spec) {
  return [spec](const Workload& w, BitGen& gen) ->
         Result<std::vector<double>> {
    IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out,
                             MechanismRegistry::Global().Run(w, spec, gen));
    return std::move(out.answers);
  };
}

struct TaskResult {
  std::string mechanism;
  TrialAggregate error;
};

// The comparison suite: the four matrix-mechanism strategies (natural
// and greedy-tuned scales) against the paper's own relative-error
// machinery and the flat baseline.
std::vector<std::pair<std::string, MechanismFn>> Suite(
    double epsilon, double delta, double lambda_max, double lambda_delta) {
  std::vector<std::pair<std::string, MechanismFn>> suite;
  suite.emplace_back("matrix:identity",
                     Registry(Spec("matrix:strategy=identity", epsilon)));
  suite.emplace_back("matrix:tree",
                     Registry(Spec("matrix:strategy=tree", epsilon)));
  suite.emplace_back("matrix:wavelet",
                     Registry(Spec("matrix:strategy=wavelet", epsilon)));
  suite.emplace_back(
      "matrix_greedy:tree",
      Registry(Spec("matrix_greedy:strategy=tree", epsilon)));
  suite.emplace_back(
      "ireduct", [=](const Workload& w, BitGen& gen) ->
                 Result<std::vector<double>> {
        IReductParams p;
        p.epsilon = epsilon;
        p.delta = delta;
        p.lambda_max = lambda_max;
        p.lambda_delta = lambda_delta;
        IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out, RunIReduct(w, p, gen));
        return std::move(out.answers);
      });
  suite.emplace_back(
      "iresamp", [=](const Workload& w, BitGen& gen) ->
                 Result<std::vector<double>> {
        IResampParams p;
        p.epsilon = epsilon;
        p.delta = delta;
        p.lambda_max = lambda_max;
        IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out, RunIResamp(w, p, gen));
        return std::move(out.answers);
      });
  suite.emplace_back("dwork", Registry(Spec("dwork", epsilon)));
  return suite;
}

std::vector<TaskResult> RunTask(
    const std::string& title, const Workload& workload, double epsilon,
    double delta, double lambda_max, double lambda_delta,
    uint64_t base_seed) {
  std::vector<TaskResult> results;
  TablePrinter table({"mechanism", "overall_rel_err", "stddev"});
  for (auto& [name, fn] :
       Suite(epsilon, delta, lambda_max, lambda_delta)) {
    const TrialAggregate agg =
        MeasureOverallError(workload, fn, delta, base_seed);
    table.AddRow({name, TablePrinter::Cell(agg.mean, 5),
                  TablePrinter::Cell(agg.stddev, 3)});
    results.push_back(TaskResult{name, agg});
  }
  std::cout << title << "\n\n";
  table.Print(std::cout);
  std::cout << '\n';
  return results;
}

void WriteTask(obs::JsonWriter& writer, const std::string& task,
               double epsilon, double delta, size_t num_queries,
               const std::vector<TaskResult>& results) {
  writer.BeginObject();
  writer.KV("task", task);
  writer.Key("epsilon");
  writer.Double(epsilon);
  writer.Key("delta");
  writer.Double(delta);
  writer.Key("num_queries");
  writer.UInt(num_queries);
  writer.Key("mechanisms");
  writer.BeginArray();
  for (const TaskResult& r : results) {
    writer.BeginObject();
    writer.KV("name", r.mechanism);
    writer.Key("overall_error");
    writer.Double(r.error.mean);
    writer.Key("stddev");
    writer.Double(r.error.stddev);
    writer.Key("trials");
    writer.UInt(static_cast<uint64_t>(r.error.trials));
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

}  // namespace

int main() {
  RegisterStandardMetrics();
  const Dataset& dataset = GetCensus(CensusKind::kBrazil);
  const double n = static_cast<double>(dataset.num_rows());
  const double delta = 1e-4 * n;

  std::string json;
  obs::JsonWriter writer(&json);
  writer.BeginObject();
  writer.KV("bench", "strategy_comparison");
  WriteHostInfo(writer);
  writer.Key("tasks");
  writer.BeginArray();

  // Task A: prefix ranges over the Age histogram, exact column-bound
  // sensitivity and a linear view for the matrix mechanisms.
  {
    auto age = Marginal::Compute(dataset, MarginalSpec{{kAge}});
    IREDUCT_CHECK(age.ok());
    const std::vector<double> histogram(age->counts().begin(),
                                        age->counts().end());
    auto workload =
        BuildRangeWorkload(histogram, PrefixRanges(histogram.size()));
    IREDUCT_CHECK(workload.ok());
    const double epsilon = 0.5;
    const double lambda_max = 2.0 * workload->Sensitivity() / epsilon;
    const auto results = RunTask(
        "Task A: prefix ranges over the Age histogram (Brazil, eps=0.5)",
        *workload, epsilon, delta, lambda_max,
        lambda_max / std::max(IReductSteps(), 100), 8100);
    WriteTask(writer, "prefix_ranges_age", epsilon, delta,
              workload->num_queries(), results);
  }

  // Task B: Age/Gender marginals on their joint domain.
  {
    auto marginals = ComputeMarginals(
        dataset, std::vector<MarginalSpec>{MarginalSpec{{kAge}},
                                           MarginalSpec{{kGender}},
                                           MarginalSpec{{kAge, kGender}}});
    IREDUCT_CHECK(marginals.ok());
    auto mw = MarginalWorkload::Create(std::move(*marginals));
    IREDUCT_CHECK(mw.ok());
    auto linear = mw->ToLinear(dataset);
    IREDUCT_CHECK(linear.ok());
    auto workload = linear->ToWorkload();
    IREDUCT_CHECK(workload.ok());
    const double epsilon = 0.05;
    const double lambda_max = n / 10;
    const auto results = RunTask(
        "Task B: Age/Gender marginal cells on the joint domain (Brazil, "
        "eps=0.05)",
        *workload, epsilon, delta, lambda_max,
        lambda_max / std::max(IReductSteps(), 100), 8200);
    WriteTask(writer, "marginal_cells_age_gender", epsilon, delta,
              workload->num_queries(), results);
  }

  writer.EndArray();
  writer.EndObject();
  std::ofstream out("BENCH_STRATEGY.json");
  out << json << "\n";
  std::cout << "Wrote BENCH_STRATEGY.json\n";
  EmitMetricsSnapshot("strategy_comparison");
  return 0;
}
