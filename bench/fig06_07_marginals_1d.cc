// Figures 6 and 7 reproduction: overall error of the five mechanisms on
// all one-dimensional marginals,
//   Figure 6: vs ε ∈ {0.002 .. 0.01} at δ = 1e-4·|T|;
//   Figure 7: vs δ/|T| ∈ {0.2 .. 1}×1e-4 at ε = 0.01.
// Also prints Table 4 (attribute domains) and the Section 6.3 runtime
// remark (iReduct pays an iteration loop the one-shot methods don't).
//
// Paper shape: iReduct ≈ Oracle < TwoPhase < {iResamp ≈ Dwork}; all errors
// fall as ε or δ grow.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "eval/table_printer.h"

int main() {
  using namespace ireduct;
  using namespace ireduct::bench;

  // Table 4: attribute domains actually used by the generators.
  {
    TablePrinter table({"dataset", "attribute", "domain"});
    for (CensusKind kind : {CensusKind::kBrazil, CensusKind::kUs}) {
      auto schema = CensusSchema(kind);
      for (const Attribute& a : schema->attributes()) {
        table.AddRow({KindName(kind), a.name,
                      std::to_string(a.domain_size)});
      }
    }
    std::cout << "Table 4: attribute domain sizes\n\n";
    table.Print(std::cout);
    std::cout << '\n';
  }

  const double eps1_fraction = 0.07;  // the paper's 1D sweet spot (Fig. 5)

  // Figure 6: error vs ε.
  {
    TablePrinter table({"dataset", "eps", "method", "overall_error",
                        "stddev"});
    for (CensusKind kind : {CensusKind::kBrazil, CensusKind::kUs}) {
      const CensusSetup setup = BuildCensusSetup(kind, 1);
      for (double eps : {0.002, 0.004, 0.006, 0.008, 0.01}) {
        for (auto& [name, fn] :
             PaperMechanisms(eps, setup.delta, setup.lambda_max,
                             setup.lambda_delta, eps1_fraction)) {
          const TrialAggregate agg = MeasureOverallError(
              setup.workload.workload(), fn, setup.delta, 600);
          table.AddRow({KindName(kind), TablePrinter::Cell(eps, 3), name,
                        TablePrinter::Cell(agg.mean, 5),
                        TablePrinter::Cell(agg.stddev, 3)});
        }
      }
    }
    std::cout << "Figure 6: overall error vs eps (1D marginals, "
                 "delta=1e-4*|T|)\n\n";
    table.Print(std::cout);
    std::cout << '\n';
  }

  // Figure 7: error vs δ.
  {
    TablePrinter table({"dataset", "delta/|T|", "method", "overall_error",
                        "stddev"});
    for (CensusKind kind : {CensusKind::kBrazil, CensusKind::kUs}) {
      const CensusSetup setup = BuildCensusSetup(kind, 1);
      for (double delta_frac : {0.2e-4, 0.4e-4, 0.6e-4, 0.8e-4, 1.0e-4}) {
        const double delta = delta_frac * setup.n;
        for (auto& [name, fn] :
             PaperMechanisms(0.01, delta, setup.lambda_max,
                             setup.lambda_delta, eps1_fraction)) {
          const TrialAggregate agg = MeasureOverallError(
              setup.workload.workload(), fn, delta, 700);
          table.AddRow({KindName(kind), TablePrinter::Cell(delta_frac, 3),
                        name, TablePrinter::Cell(agg.mean, 5),
                        TablePrinter::Cell(agg.stddev, 3)});
        }
      }
    }
    std::cout << "Figure 7: overall error vs delta (1D marginals, "
                 "eps=0.01)\n\n";
    table.Print(std::cout);
    std::cout << '\n';
  }

  // Section 6.3 runtime remark: one iReduct run vs one Dwork run.
  {
    const CensusSetup setup = BuildCensusSetup(CensusKind::kBrazil, 1);
    auto mechanisms =
        PaperMechanisms(0.01, setup.delta, setup.lambda_max,
                        setup.lambda_delta, 0.07);
    for (auto& [name, fn] : mechanisms) {
      BitGen gen(1);
      const auto start = std::chrono::steady_clock::now();
      auto out = fn(setup.workload.workload(), gen);
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      std::cout << "runtime " << name << ": " << ms << " ms"
                << (out.ok() ? "" : " (failed)") << '\n';
    }
  }
  bench::EmitMetricsSnapshot("fig06_07_marginals_1d");
  return 0;
}
