// Figure 5 reproduction: TwoPhase's overall error on the one-dimensional
// marginals as a function of the budget split ε1/ε, for the Brazil-like
// and US-like populations (ε = 0.01, δ = 1e-4·|T|).
//
// Paper shape: error falls to a sweet spot around ε1/ε ∈ [0.06, 0.08] and
// rises monotonically afterwards.
#include <iostream>

#include "bench_util.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"

int main() {
  using namespace ireduct;
  using namespace ireduct::bench;

  const double epsilon = 0.01;
  TablePrinter table({"dataset", "eps1/eps", "overall_error", "stddev"});
  for (CensusKind kind : {CensusKind::kBrazil, CensusKind::kUs}) {
    const CensusSetup setup = BuildCensusSetup(kind, 1);
    const double delta = setup.delta;
    for (double fraction :
         {0.02, 0.04, 0.06, 0.08, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6}) {
      MechanismSpec spec("two_phase");
      spec.Set("epsilon", epsilon);
      spec.Set("epsilon1_fraction", fraction);
      spec.Set("delta", delta);
      const TrialAggregate agg = MeasureOverallError(
          setup.workload.workload(), SpecMechanism(spec), delta, 5000);
      table.AddRow({KindName(kind), TablePrinter::Cell(fraction, 3),
                    TablePrinter::Cell(agg.mean, 5),
                    TablePrinter::Cell(agg.stddev, 3)});
    }
  }
  std::cout << "Figure 5: TwoPhase overall error vs eps1/eps "
               "(1D marginals, eps=0.01, delta=1e-4*|T|)\n\n";
  table.Print(std::cout);
  return 0;
}
