// Figure 5 reproduction: TwoPhase's overall error on the one-dimensional
// marginals as a function of the budget split ε1/ε, for the Brazil-like
// and US-like populations (ε = 0.01, δ = 1e-4·|T|).
//
// Paper shape: error falls to a sweet spot around ε1/ε ∈ [0.06, 0.08] and
// rises monotonically afterwards.
#include <iostream>

#include "algorithms/two_phase.h"
#include "bench_util.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"

int main() {
  using namespace ireduct;
  using namespace ireduct::bench;

  const double epsilon = 0.01;
  TablePrinter table({"dataset", "eps1/eps", "overall_error", "stddev"});
  for (CensusKind kind : {CensusKind::kBrazil, CensusKind::kUs}) {
    const MarginalWorkload mw = BuildKWayWorkload(kind, 1);
    const double delta = 1e-4 * GetCensus(kind).num_rows();
    for (double fraction :
         {0.02, 0.04, 0.06, 0.08, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6}) {
      MechanismFn two_phase = [&, fraction](const Workload& w, BitGen& gen)
          -> Result<std::vector<double>> {
        const TwoPhaseParams p{fraction * epsilon, (1 - fraction) * epsilon,
                               delta};
        IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out, RunTwoPhase(w, p, gen));
        return std::move(out.answers);
      };
      const TrialAggregate agg =
          MeasureOverallError(mw.workload(), two_phase, delta, 5000);
      table.AddRow({KindName(kind), TablePrinter::Cell(fraction, 3),
                    TablePrinter::Cell(agg.mean, 5),
                    TablePrinter::Cell(agg.stddev, 3)});
    }
  }
  std::cout << "Figure 5: TwoPhase overall error vs eps1/eps "
               "(1D marginals, eps=0.01, delta=1e-4*|T|)\n\n";
  table.Print(std::cout);
  return 0;
}
