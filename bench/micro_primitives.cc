// Google-benchmark micro suite for the library's hot primitives: the
// samplers that dominate iReduct's inner loop, marginal computation, and
// one end-to-end mechanism run per task size.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "algorithms/ireduct.h"
#include "algorithms/selection.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/simd_kernels.h"
#include "common/thread_pool.h"
#include "data/census_generator.h"
#include "dp/incremental_sensitivity.h"
#include "dp/laplace_coupling.h"
#include "dp/noise_down.h"
#include "dp/workload.h"
#include "marginals/marginal.h"
#include "marginals/consistency.h"
#include "marginals/marginal_evaluator.h"
#include "marginals/marginal_set.h"
#include "marginals/marginal_workload.h"
#include "queries/linear_workload.h"
#include "queries/range_workload.h"
#include "queries/strategy.h"

namespace {

using namespace ireduct;

void BM_LaplaceSample(benchmark::State& state) {
  BitGen gen(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Laplace(2.0));
  }
}
BENCHMARK(BM_LaplaceSample);

// Batch Laplace sampling: the dispatched kernel tier vs the pinned scalar
// reference on identical lane states. The outputs are bit-identical
// (simd_kernels_test enforces it); these benches measure only the cost
// gap, which tools/check.sh perf gates at >= 2x on AVX2 hardware.
simd::LaneStates BenchLaneStates() {
  BitGen gen(12);
  simd::LaneStates states;
  for (auto& lane : states) lane = gen.Fork().SaveState();
  return states;
}

void BM_BatchLaplaceKernel(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const simd::LaneStates states = BenchLaneStates();
  std::vector<double> scales(n, 2.0);
  std::vector<double> out(n);
  for (auto _ : state) {
    simd::BatchLaplace(states, scales.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(simd::TierName(simd::ActiveTier()));
}
BENCHMARK(BM_BatchLaplaceKernel)->Arg(1024)->Arg(65536);

void BM_BatchLaplaceScalarRef(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const simd::LaneStates states = BenchLaneStates();
  std::vector<double> scales(n, 2.0);
  std::vector<double> out(n);
  for (auto _ : state) {
    simd::BatchLaplaceScalarRef(states, scales.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BatchLaplaceScalarRef)->Arg(1024)->Arg(65536);

// Per-shard counting on a Zipf-skewed 2-attribute census column pair —
// the exact shape of the fused evaluator's inner loop. Three rungs:
//
//   BM_CountPlanKernel        dispatched kernel (lane-striped increments,
//                             vector index computation on AVX2)
//   BM_CountPlanScalarRef     the same kernel algorithm pinned to the
//                             scalar tier (the bit-parity reference)
//   BM_CountPlanReferenceLoop Marginal::Compute on the same spec — the
//                             per-marginal reference counting path that
//                             eval_scaling's naive section times
//
// tools/check.sh perf gates kernel vs reference loop at >= 2x on AVX2
// hardware. Kernel vs its own scalar tier is a smaller, CPU-dependent gap
// (~1.2-1.3x on cores with memory renaming, where the reference's
// store-to-load increment chains never stall to begin with); the bulk of
// the win over the reference comes from u32 tables, pre-resolved strides,
// and raw column pointers, which every tier of the kernel shares.
void BM_CountPlanKernel(benchmark::State& state) {
  static const Dataset* dataset = [] {
    CensusConfig c;
    c.rows = 100'000;
    return new Dataset(std::move(*GenerateCensus(c)));
  }();
  const size_t n = dataset->num_rows();
  const uint32_t d0 = dataset->schema().attribute(kOccupation).domain_size;
  const uint32_t d1 = dataset->schema().attribute(kEducation).domain_size;
  const size_t cells = static_cast<size_t>(d0) * d1;
  std::vector<uint32_t> counts(cells);
  std::vector<uint32_t> scratch(simd::kBatchLanes * cells);
  simd::CountPlanArgs args;
  args.col0 = dataset->column(kOccupation).data();
  args.col1 = dataset->column(kEducation).data();
  args.begin = 0;
  args.end = n;
  args.stride0 = d1;
  args.counts = counts.data();
  args.cells = cells;
  args.lane_scratch = scratch.data();
  for (auto _ : state) {
    std::fill(counts.begin(), counts.end(), 0);
    simd::CountPlan(args);
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(simd::TierName(simd::ActiveTier()));
}
BENCHMARK(BM_CountPlanKernel);

void BM_CountPlanScalarRef(benchmark::State& state) {
  static const Dataset* dataset = [] {
    CensusConfig c;
    c.rows = 100'000;
    return new Dataset(std::move(*GenerateCensus(c)));
  }();
  const size_t n = dataset->num_rows();
  const uint32_t d0 = dataset->schema().attribute(kOccupation).domain_size;
  const uint32_t d1 = dataset->schema().attribute(kEducation).domain_size;
  const size_t cells = static_cast<size_t>(d0) * d1;
  std::vector<uint32_t> counts(cells);
  simd::CountPlanArgs args;
  args.col0 = dataset->column(kOccupation).data();
  args.col1 = dataset->column(kEducation).data();
  args.begin = 0;
  args.end = n;
  args.stride0 = d1;
  args.counts = counts.data();
  args.cells = cells;
  for (auto _ : state) {
    std::fill(counts.begin(), counts.end(), 0);
    simd::CountPlanScalarRef(args);
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CountPlanScalarRef);

void BM_CountPlanReferenceLoop(benchmark::State& state) {
  static const Dataset* dataset = [] {
    CensusConfig c;
    c.rows = 100'000;
    return new Dataset(std::move(*GenerateCensus(c)));
  }();
  const MarginalSpec spec{{kOccupation, kEducation}};
  for (auto _ : state) {
    auto marginal = Marginal::Compute(*dataset, spec);
    benchmark::DoNotOptimize(marginal);
  }
  state.SetItemsProcessed(state.iterations() * dataset->num_rows());
}
BENCHMARK(BM_CountPlanReferenceLoop);

void BM_NoiseDownCreate(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto dist =
        NoiseDownDistribution::Create(100.0, 140.0, lambda, lambda * 0.9);
    benchmark::DoNotOptimize(dist);
  }
}
BENCHMARK(BM_NoiseDownCreate)->Arg(10)->Arg(1000)->Arg(100000);

void BM_NoiseDownSample(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0));
  auto dist =
      NoiseDownDistribution::Create(100.0, 140.0, lambda, lambda * 0.9);
  BitGen gen(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist->Sample(gen));
  }
}
BENCHMARK(BM_NoiseDownSample)->Arg(10)->Arg(1000)->Arg(100000);

void BM_NoiseDownEndToEnd(benchmark::State& state) {
  BitGen gen(3);
  double y = 150.0;
  for (auto _ : state) {
    auto yp = NoiseDown(100.0, y, 50.0, 45.0, gen);
    benchmark::DoNotOptimize(yp);
  }
}
BENCHMARK(BM_NoiseDownEndToEnd);

void BM_CoupledNoiseDown(benchmark::State& state) {
  BitGen gen(4);
  for (auto _ : state) {
    auto yp = CoupledNoiseDown(100.0, 150.0, 50.0, 45.0, gen);
    benchmark::DoNotOptimize(yp);
  }
}
BENCHMARK(BM_CoupledNoiseDown);

void BM_MarginalCompute(benchmark::State& state) {
  CensusConfig config;
  config.rows = 100'000;
  static const Dataset* dataset = [] {
    CensusConfig c;
    c.rows = 100'000;
    return new Dataset(std::move(*GenerateCensus(c)));
  }();
  const int dims = static_cast<int>(state.range(0));
  const MarginalSpec spec =
      dims == 1 ? MarginalSpec{{kOccupation}}
                : MarginalSpec{{kOccupation, kEducation}};
  for (auto _ : state) {
    auto marginal = Marginal::Compute(*dataset, spec);
    benchmark::DoNotOptimize(marginal);
  }
  state.SetItemsProcessed(state.iterations() * dataset->num_rows());
}
BENCHMARK(BM_MarginalCompute)->Arg(1)->Arg(2);

// Evaluation-layer baseline feeding BENCH_EVAL.json (bench/eval_scaling):
// all k-way marginals over 100k census rows, per-marginal scans vs the
// fused single-pass evaluator at 1 and N threads. Outputs are
// bit-identical across all four variants (enforced by
// marginal_evaluator_test.cc); these benches measure only the cost gap.

// One Marginal::Compute dataset scan per spec — the historical path.
void BM_MarginalSetPerMarginal(benchmark::State& state) {
  static const Dataset* dataset = [] {
    CensusConfig c;
    c.rows = 100'000;
    return new Dataset(std::move(*GenerateCensus(c)));
  }();
  const int arity = static_cast<int>(state.range(0));
  const auto specs = AllKWaySpecs(dataset->schema(), arity);
  for (auto _ : state) {
    for (const MarginalSpec& spec : *specs) {
      auto marginal = Marginal::Compute(*dataset, spec);
      benchmark::DoNotOptimize(marginal);
    }
  }
  state.SetItemsProcessed(state.iterations() * dataset->num_rows() *
                          specs->size());
}
BENCHMARK(BM_MarginalSetPerMarginal)->Arg(1)->Arg(2);

// Fused single pass; threads = state.range(1) (1 = no pool).
void BM_MarginalSetFused(benchmark::State& state) {
  static const Dataset* dataset = [] {
    CensusConfig c;
    c.rows = 100'000;
    return new Dataset(std::move(*GenerateCensus(c)));
  }();
  const int arity = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const auto specs = AllKWaySpecs(dataset->schema(), arity);
  auto evaluator = MarginalSetEvaluator::Create(dataset->schema(), *specs);
  ThreadPool pool(threads);
  for (auto _ : state) {
    auto marginals =
        evaluator->Compute(*dataset, {}, threads > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(marginals);
  }
  state.SetItemsProcessed(state.iterations() * dataset->num_rows() *
                          specs->size());
}
BENCHMARK(BM_MarginalSetFused)
    ->Args({1, 1})
    ->Args({1, 8})
    ->Args({2, 1})
    ->Args({2, 8});

void BM_GeneralizedSensitivity(benchmark::State& state) {
  const size_t groups = static_cast<size_t>(state.range(0));
  std::vector<double> answers(groups * 4, 10.0);
  std::vector<QueryGroup> gs;
  for (uint32_t g = 0; g < groups; ++g) {
    gs.push_back(QueryGroup{"g", g * 4, (g + 1) * 4, 2.0});
  }
  auto w = Workload::Create(std::move(answers), std::move(gs));
  const std::vector<double> scales(groups, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w->GeneralizedSensitivity(scales));
  }
}
BENCHMARK(BM_GeneralizedSensitivity)->Arg(9)->Arg(36)->Arg(256);

// A per-query workload of `groups` single-query groups — the shape where
// the incremental engine's advantage is largest.
Workload PerQueryWorkload(size_t groups) {
  std::vector<double> answers(groups);
  std::vector<QueryGroup> gs;
  gs.reserve(groups);
  for (uint32_t g = 0; g < groups; ++g) {
    answers[g] = 1.0 + static_cast<double>(g % 997);
    gs.push_back(QueryGroup{"q", g, g + 1, 1.0});
  }
  return std::move(*Workload::Create(std::move(answers), std::move(gs)));
}

// The naive per-iteration GS cost: one full O(m) recompute.
void BM_GsFullRecompute(benchmark::State& state) {
  const size_t groups = static_cast<size_t>(state.range(0));
  const Workload w = PerQueryWorkload(groups);
  const std::vector<double> scales(groups, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.GeneralizedSensitivity(scales));
  }
  state.SetItemsProcessed(state.iterations() * groups);
}
BENCHMARK(BM_GsFullRecompute)->Arg(256)->Arg(4096)->Arg(65536);

// The incremental per-iteration GS cost: one O(1) trial + commit pair
// (amortizing the periodic full resync at the default interval).
void BM_GsIncrementalTrialCommit(benchmark::State& state) {
  const size_t groups = static_cast<size_t>(state.range(0));
  const Workload w = PerQueryWorkload(groups);
  std::vector<double> scales(groups, 1e9);
  IncrementalSensitivity tracker(w, scales);
  BitGen gen(9);
  size_t g = 0;
  for (auto _ : state) {
    const double next = tracker.scales()[g] * 0.999999;
    benchmark::DoNotOptimize(tracker.Trial(g, next));
    tracker.Commit(g, next);
    g = (g + 1) % groups;
  }
}
BENCHMARK(BM_GsIncrementalTrialCommit)->Arg(256)->Arg(4096)->Arg(65536);

// The naive per-iteration selection cost: one O(m + n) linear scan.
void BM_PickGroupLinearScan(benchmark::State& state) {
  const size_t groups = static_cast<size_t>(state.range(0));
  const Workload w = PerQueryWorkload(groups);
  BitGen gen(10);
  std::vector<double> noisy(w.num_queries());
  for (double& y : noisy) y = gen.Uniform(1.0, 1000.0);
  const std::vector<double> scales(groups, 100.0);
  const std::vector<uint8_t> active(groups, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PickGroupIReduct(w, noisy, scales, active, 1.0, 2.0));
  }
  state.SetItemsProcessed(state.iterations() * groups);
}
BENCHMARK(BM_PickGroupLinearScan)->Arg(256)->Arg(4096)->Arg(65536);

// The incremental per-iteration selection cost: one heap pop + the
// re-push of the consumed group after its (simulated) scale move.
void BM_PickGroupHeapCycle(benchmark::State& state) {
  const size_t groups = static_cast<size_t>(state.range(0));
  const Workload w = PerQueryWorkload(groups);
  BitGen gen(11);
  std::vector<double> noisy(w.num_queries());
  for (double& y : noisy) y = gen.Uniform(1.0, 1000.0);
  std::vector<double> scales(groups, 1e9);
  const std::vector<uint8_t> active(groups, 1);
  GroupScoreHeap heap(w, SelectionRule::kIReductRatio, 1.0, 2.0);
  heap.Build(noisy, scales, active);
  for (auto _ : state) {
    const size_t g = heap.PopBest();
    scales[g] *= 0.999999;
    heap.Update(g, noisy, scales);
  }
}
BENCHMARK(BM_PickGroupHeapCycle)->Arg(256)->Arg(4096)->Arg(65536);

void BM_TreeStrategyPublish(benchmark::State& state) {
  const size_t bins = static_cast<size_t>(state.range(0));
  std::vector<double> counts(bins);
  for (size_t b = 0; b < bins; ++b) counts[b] = 1000.0 / (1 + b);
  const Strategy tree = Strategy::Tree(bins);
  BitGen gen(6);
  for (auto _ : state) {
    auto h = tree.Publish(counts, 0.5, 2.0, tree.row_multipliers(), gen);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_TreeStrategyPublish)->Arg(64)->Arg(1024);

void BM_HaarStrategyPublish(benchmark::State& state) {
  const size_t bins = static_cast<size_t>(state.range(0));
  std::vector<double> counts(bins);
  for (size_t b = 0; b < bins; ++b) counts[b] = 1000.0 / (1 + b);
  const Strategy haar = Strategy::Haar(bins);
  BitGen gen(7);
  for (auto _ : state) {
    auto h = haar.Publish(counts, 0.5, 2.0, haar.row_multipliers(), gen);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_HaarStrategyPublish)->Arg(64)->Arg(1024);

// Sparse workload-matrix mat-vec: the per-trial cost of answering a
// prefix workload through the linear view (W·x̂ after reconstruction).
void BM_SparseMatVecPrefix(benchmark::State& state) {
  const size_t bins = static_cast<size_t>(state.range(0));
  std::vector<double> histogram(bins);
  for (size_t b = 0; b < bins; ++b) histogram[b] = 1000.0 / (1 + b);
  auto lw = RangeLinearWorkload(histogram, PrefixRanges(bins));
  IREDUCT_CHECK(lw.ok());
  std::vector<double> out(lw->num_queries());
  for (auto _ : state) {
    lw->matrix().MatVec(lw->histogram(), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lw->matrix().nnz()));
}
BENCHMARK(BM_SparseMatVecPrefix)->Arg(64)->Arg(256)->Arg(1024);

// Least-squares reconstruction alone (no noise draw): the tree BLUE and
// the inverse Haar at natural scales.
void BM_StrategyReconstruct(benchmark::State& state) {
  const size_t bins = static_cast<size_t>(state.range(1));
  std::vector<double> counts(bins);
  for (size_t b = 0; b < bins; ++b) counts[b] = 1000.0 / (1 + b);
  const Strategy s =
      state.range(0) == 0 ? Strategy::Tree(bins) : Strategy::Haar(bins);
  const std::vector<double> rows = s.RowAnswers(counts);
  const std::vector<double> scales(s.num_rows(), 3.0);
  for (auto _ : state) {
    auto x = s.Reconstruct(rows, scales);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_StrategyReconstruct)
    ->Args({0, 256})
    ->Args({0, 4096})
    ->Args({1, 256})
    ->Args({1, 4096});

void BM_MakeMutuallyConsistent(benchmark::State& state) {
  // A 1D+2D marginal set over a small synthetic table, perturbed.
  CensusConfig config;
  config.rows = 20'000;
  static const Dataset* dataset =
      new Dataset(std::move(*GenerateCensus(config)));
  std::vector<Marginal> noisy;
  {
    auto one = Marginal::Compute(*dataset, MarginalSpec{{kEducation}});
    auto two = Marginal::Compute(
        *dataset, MarginalSpec{{kEducation, kClassOfWorker}});
    BitGen gen(8);
    for (const Marginal* m : {&*one, &*two}) {
      std::vector<double> counts(m->counts().begin(), m->counts().end());
      for (double& c : counts) c += gen.Laplace(5.0);
      noisy.push_back(std::move(
          *Marginal::FromCounts(m->spec(), m->domain_sizes(), counts)));
    }
  }
  ConsistencyOptions options;
  options.target_total = 20'000;
  for (auto _ : state) {
    auto repaired = MakeMutuallyConsistent(noisy, options);
    benchmark::DoNotOptimize(repaired);
  }
}
BENCHMARK(BM_MakeMutuallyConsistent);

void BM_IReductSmallWorkload(benchmark::State& state) {
  std::vector<double> answers;
  std::vector<QueryGroup> groups;
  for (uint32_t g = 0; g < 9; ++g) {
    for (int c = 0; c < 16; ++c) answers.push_back(5.0 + 100.0 * g);
    groups.push_back(QueryGroup{"g", g * 16, (g + 1) * 16, 2.0});
  }
  auto w = Workload::Create(std::move(answers), std::move(groups));
  IReductParams p;
  p.epsilon = 0.1;
  p.delta = 1.0;
  p.lambda_max = 2000;
  p.lambda_delta = 20;
  BitGen gen(5);
  for (auto _ : state) {
    auto out = RunIReduct(*w, p, gen);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_IReductSmallWorkload);

}  // namespace

BENCHMARK_MAIN();
