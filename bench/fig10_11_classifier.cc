// Figures 10 and 11 reproduction: Naive Bayes classification from noisy
// marginals (Section 6.5). Education is the class; the marginal set is its
// 1D marginal plus eight {feature, Education} 2D marginals. For each ε we
// report, per mechanism, the mean overall error of the noisy training
// marginals (Figure 10) and the 10-fold cross-validated accuracy
// (Figure 11), plus the noise-free reference line.
//
// Paper shape: error ordering as in Figure 6; methods with lower relative
// error yield more accurate classifiers, approaching the noise-free line
// as ε grows.
#include <iostream>

#include "bench_util.h"
#include "classifier/cross_validation.h"
#include "eval/table_printer.h"

int main() {
  using namespace ireduct;
  using namespace ireduct::bench;

  const double eps1_fraction = 0.03;  // the paper's split for this task
  const int folds = 10;

  TablePrinter table({"dataset", "eps", "method", "overall_error",
                      "accuracy"});
  for (CensusKind kind : {CensusKind::kBrazil, CensusKind::kUs}) {
    const Dataset& dataset = GetCensus(kind);
    const double n = static_cast<double>(dataset.num_rows());
    // Training folds hold 9/10 of the data.
    const double train_n = n * (folds - 1) / folds;
    const double delta = 1e-4 * train_n;

    // Noise-free reference (the dashed line of Figure 11).
    {
      BitGen cv_gen(42);
      auto cv = CrossValidateClassifier(
          dataset, kEducation, folds, delta,
          [](const MarginalWorkload& mw) {
            const auto a = mw.workload().true_answers();
            return Result<std::vector<double>>(
                std::vector<double>(a.begin(), a.end()));
          },
          cv_gen);
      if (!cv.ok()) {
        std::cerr << cv.status() << '\n';
        return 1;
      }
      table.AddRow({KindName(kind), "-", "NoiseFree",
                    TablePrinter::Cell(cv->mean_overall_error, 5),
                    TablePrinter::Cell(cv->mean_accuracy, 4)});
    }

    for (double eps : {0.001, 0.002, 0.004, 0.007, 0.01}) {
      const double lambda_max = train_n / 10;
      const double lambda_delta = lambda_max / IReductSteps();
      for (auto& [name, fn] : PaperMechanisms(eps, delta, lambda_max,
                                              lambda_delta,
                                              eps1_fraction)) {
        // Average over TRIALS cross-validations with distinct noise seeds
        // but identical folds.
        double err = 0, acc = 0;
        const int trials = Trials();
        for (int t = 0; t < trials; ++t) {
          BitGen noise_gen(1000 + 17 * t);
          BitGen cv_gen(42);
          auto cv = CrossValidateClassifier(
              dataset, kEducation, folds, delta,
              [&](const MarginalWorkload& mw) {
                return fn(mw.workload(), noise_gen);
              },
              cv_gen);
          if (!cv.ok()) {
            std::cerr << cv.status() << '\n';
            return 1;
          }
          err += cv->mean_overall_error / trials;
          acc += cv->mean_accuracy / trials;
        }
        table.AddRow({KindName(kind), TablePrinter::Cell(eps, 3), name,
                      TablePrinter::Cell(err, 5),
                      TablePrinter::Cell(acc, 4)});
      }
    }
  }
  std::cout << "Figures 10 & 11: marginal overall error and Naive Bayes "
               "accuracy vs eps\n(class = Education, 10-fold CV, "
               "delta=1e-4*|T_train|)\n\n";
  table.Print(std::cout);
  return 0;
}
