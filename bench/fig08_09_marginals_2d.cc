// Figures 8 and 9 reproduction: overall error of the five mechanisms on
// all 36 two-dimensional marginals,
//   Figure 8: vs ε ∈ {0.002 .. 0.01} at δ = 1e-4·|T|;
//   Figure 9: vs δ/|T| ∈ {0.2 .. 1}×1e-4 at ε = 0.01 (the paper's prose
//   says ε = 0.1, but its axis ranges match the 0.01 of Figure 8; we use
//   0.01 — see DESIGN.md).
// Also prints the Section 6.4 runtime remark.
//
// Paper shape: same ordering as Figure 6, but the gaps between iReduct,
// TwoPhase and Dwork narrow because most 2D marginals are sparse, pushing
// every method toward near-uniform scales.
#include <chrono>
#include <iostream>

#include "bench_util.h"
#include "eval/table_printer.h"

int main() {
  using namespace ireduct;
  using namespace ireduct::bench;

  const double eps1_fraction = 0.025;  // the paper's 2D split (Section 6.4)

  // Figure 8: error vs ε.
  {
    TablePrinter table({"dataset", "eps", "method", "overall_error",
                        "stddev"});
    for (CensusKind kind : {CensusKind::kBrazil, CensusKind::kUs}) {
      const CensusSetup setup = BuildCensusSetup(kind, 2);
      for (double eps : {0.002, 0.004, 0.006, 0.008, 0.01}) {
        for (auto& [name, fn] :
             PaperMechanisms(eps, setup.delta, setup.lambda_max,
                             setup.lambda_delta, eps1_fraction)) {
          const TrialAggregate agg = MeasureOverallError(
              setup.workload.workload(), fn, setup.delta, 800);
          table.AddRow({KindName(kind), TablePrinter::Cell(eps, 3), name,
                        TablePrinter::Cell(agg.mean, 5),
                        TablePrinter::Cell(agg.stddev, 3)});
        }
      }
    }
    std::cout << "Figure 8: overall error vs eps (2D marginals, "
                 "delta=1e-4*|T|)\n\n";
    table.Print(std::cout);
    std::cout << '\n';
  }

  // Figure 9: error vs δ.
  {
    TablePrinter table({"dataset", "delta/|T|", "method", "overall_error",
                        "stddev"});
    for (CensusKind kind : {CensusKind::kBrazil, CensusKind::kUs}) {
      const CensusSetup setup = BuildCensusSetup(kind, 2);
      for (double delta_frac : {0.2e-4, 0.4e-4, 0.6e-4, 0.8e-4, 1.0e-4}) {
        const double delta = delta_frac * setup.n;
        for (auto& [name, fn] :
             PaperMechanisms(0.01, delta, setup.lambda_max,
                             setup.lambda_delta, eps1_fraction)) {
          const TrialAggregate agg = MeasureOverallError(
              setup.workload.workload(), fn, delta, 900);
          table.AddRow({KindName(kind), TablePrinter::Cell(delta_frac, 3),
                        name, TablePrinter::Cell(agg.mean, 5),
                        TablePrinter::Cell(agg.stddev, 3)});
        }
      }
    }
    std::cout << "Figure 9: overall error vs delta (2D marginals, "
                 "eps=0.01)\n\n";
    table.Print(std::cout);
    std::cout << '\n';
  }

  // Section 6.4 runtime remark: iReduct's loop is much heavier on the 2D
  // task (the paper reports ~15 minutes at full 10^5-step resolution).
  {
    const CensusSetup setup = BuildCensusSetup(CensusKind::kBrazil, 2);
    auto mechanisms =
        PaperMechanisms(0.01, setup.delta, setup.lambda_max,
                        setup.lambda_delta, 0.025);
    for (auto& [name, fn] : mechanisms) {
      BitGen gen(1);
      const auto start = std::chrono::steady_clock::now();
      auto out = fn(setup.workload.workload(), gen);
      const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      std::cout << "runtime " << name << ": " << ms << " ms"
                << (out.ok() ? "" : " (failed)") << '\n';
    }
  }
  bench::EmitMetricsSnapshot("fig08_09_marginals_2d");
  return 0;
}
