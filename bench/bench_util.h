// Shared support for the figure-reproduction benchmark harnesses: cached
// synthetic census datasets, marginal workload builders, and a runner that
// sweeps every mechanism of Section 6 with the paper's parameters.
//
// Environment knobs (all optional):
//   CENSUS_ROWS    Brazil-like row count (US-like is scaled 1.4x to match
//                  the paper's 10M/14M ratio). Default 400000 — 4% of the
//                  paper's scale; the curve *shapes* are scale-invariant
//                  because δ, λmax and λΔ are defined relative to |T|.
//   TRIALS         runs averaged per point (paper: 10). Default 3.
//   IREDUCT_STEPS  λmax/λΔ — iReduct's reduction resolution per group.
//                  The paper uses 10^5; default 150 (the ablation bench
//                  shows the error curve is flat in this knob well below
//                  the default).
//   BENCH_MECHANISMS  semicolon-separated mechanism specs (see
//                  algorithms/mechanism_registry.h) replacing the default
//                  Section 6 suite in PaperMechanisms, e.g.
//                  "ireduct;ireduct:reducer=exact_coupling;dwork".
//   IREDUCT_THREADS  worker threads for the evaluation layer: fused
//                  marginal computation shards its dataset pass and
//                  MeasureOverallError runs its trials concurrently.
//                  Default 1. Every parallel path is bit-identical to the
//                  sequential one (see docs/PERFORMANCE.md), so the knob
//                  only changes wall-clock, never results.
#ifndef IREDUCT_BENCH_BENCH_UTIL_H_
#define IREDUCT_BENCH_BENCH_UTIL_H_

#include <functional>
#include <string>
#include <vector>

#include "algorithms/mechanism_registry.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "data/census_generator.h"
#include "eval/experiment.h"
#include "marginals/marginal_workload.h"
#include "obs/json.h"

namespace ireduct {
namespace bench {

/// Census rows for the given population, honoring CENSUS_ROWS.
uint64_t RowsFor(CensusKind kind);

/// Returns (and caches across calls within the process) the synthetic
/// census dataset for `kind`. Aborts on generation failure.
const Dataset& GetCensus(CensusKind kind);

/// Content fingerprint of GetCensus(kind), computed once per process —
/// the MarginalCache key for the shared datasets.
uint64_t GetCensusFingerprint(CensusKind kind);

/// Shared worker pool sized by IREDUCT_THREADS, or nullptr when the knob
/// is 1/unset. Passed to the fused marginal evaluator by the setup
/// builders; usable by any bench needing evaluation-layer parallelism.
ThreadPool* EvalPool();

/// Builds the all-k-way marginal workload over the cached dataset.
MarginalWorkload BuildKWayWorkload(CensusKind kind, int k);

/// Human name of the population ("Brazil" / "USA").
std::string KindName(CensusKind kind);

/// Everything the figure benches derive from one census task: the all-
/// k-way marginal workload plus the paper's standard parameters for it
/// (δ = 1e-4·|T|, λmax = |T|/10, λΔ = λmax/IREDUCT_STEPS). Replaces the
/// per-bench copies of this boilerplate.
struct CensusSetup {
  CensusKind kind;
  MarginalWorkload workload;
  double n;
  double delta;
  double lambda_max;
  double lambda_delta;
};

/// Builds the setup over the cached census (GetCensus).
CensusSetup BuildCensusSetup(CensusKind kind, int k);

/// Builds the setup over a freshly generated census of exactly `rows`
/// rows (seed 2011, uncached) — for cardinality sweeps.
CensusSetup BuildCensusSetupForRows(CensusKind kind, uint64_t rows, int k);

/// One mechanism run on a workload: returns the published answers.
using MechanismFn = std::function<Result<std::vector<double>>(
    const Workload&, BitGen&)>;

/// MechanismFn dispatching `spec` through the global MechanismRegistry
/// verbatim (no default filling). Aborts on an unknown mechanism or an
/// invalid spec so bench call sites stay assert-free.
MechanismFn SpecMechanism(const MechanismSpec& spec);

/// The Section 6 competitor set, in the paper's reporting order:
/// Oracle, iReduct, TwoPhase, iResamp, Dwork — each dispatched through
/// the global MechanismRegistry. `epsilon1_fraction` is TwoPhase's ε1/ε
/// split (the paper tunes it per task; see Figure 5). The BENCH_MECHANISMS
/// environment knob replaces the suite with arbitrary specs; the given
/// epsilon/delta/λ parameters fill any declared parameter a spec leaves
/// unset, so "ireduct:reducer=exact_coupling" inherits the sweep's ε.
std::vector<std::pair<std::string, MechanismFn>> PaperMechanisms(
    double epsilon, double delta, double lambda_max, double lambda_delta,
    double epsilon1_fraction);

/// Mean ± stddev of the overall error (Definition 6) of `mechanism` on
/// `workload` over TRIALS seeded runs.
TrialAggregate MeasureOverallError(const Workload& workload,
                                   const MechanismFn& mechanism, double delta,
                                   uint64_t base_seed);

/// TRIALS environment knob.
int Trials();

/// IREDUCT_STEPS environment knob.
int IReductSteps();

/// Writes a "host" object into an open JSON object: CPU model (from
/// /proc/cpuinfo), hardware concurrency, detected and active SIMD tiers,
/// and the -march flags the build used. Every BENCH_*.json carries it so
/// perf trajectories are comparable across machines and build configs.
void WriteHostInfo(obs::JsonWriter& writer);

/// Pre-registers the standard mechanism-work metrics (iReduct iterations,
/// NoiseDown resample draws, privacy budget spent, bench runs) so every
/// snapshot carries them even when a bench exercised none — a BENCH_*.json
/// consumer can rely on the keys existing.
void RegisterStandardMetrics();

/// Emits the process metrics snapshot for `bench_name`: written as a JSON
/// blob {"bench":...,"metrics":{...}} to the path in the BENCH_METRICS_OUT
/// environment variable, or summarized to stderr when the knob is unset.
/// Also honors BENCH_REPORT_OUT (see EmitRunReport). Call once at the end
/// of a bench main so the recorded counters cover the whole run.
void EmitMetricsSnapshot(const std::string& bench_name);

/// Writes the unified run report (eval/run_report) for `bench_name` to the
/// path in the BENCH_REPORT_OUT environment variable: the full metrics
/// snapshot plus the event stream when an EventLog is installed. No-op
/// when the knob is unset.
void EmitRunReport(const std::string& bench_name);

}  // namespace bench
}  // namespace ireduct

#endif  // IREDUCT_BENCH_BENCH_UTIL_H_
