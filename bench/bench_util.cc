#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

#include "algorithms/dwork.h"
#include "algorithms/ireduct.h"
#include "algorithms/iresamp.h"
#include "algorithms/oracle.h"
#include "algorithms/two_phase.h"
#include "eval/metrics.h"
#include "marginals/marginal_set.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace ireduct {
namespace bench {

int Trials() { return static_cast<int>(EnvInt64("TRIALS", 3)); }

int IReductSteps() {
  return static_cast<int>(EnvInt64("IREDUCT_STEPS", 150));
}

uint64_t RowsFor(CensusKind kind) {
  const uint64_t brazil = EnvInt64("CENSUS_ROWS", 400'000);
  // The paper's datasets hold ~10M (Brazil) and ~14M (US) records.
  return kind == CensusKind::kBrazil ? brazil : brazil * 14 / 10;
}

std::string KindName(CensusKind kind) {
  return kind == CensusKind::kBrazil ? "Brazil" : "USA";
}

const Dataset& GetCensus(CensusKind kind) {
  static std::map<CensusKind, Dataset>* cache =
      new std::map<CensusKind, Dataset>();
  auto it = cache->find(kind);
  if (it != cache->end()) return it->second;
  CensusConfig config;
  config.kind = kind;
  config.rows = RowsFor(kind);
  config.seed = 2011 + static_cast<uint64_t>(kind);
  std::fprintf(stderr, "[bench] generating %llu %s-like census rows...\n",
               static_cast<unsigned long long>(config.rows),
               KindName(kind).c_str());
  auto dataset = GenerateCensus(config);
  if (!dataset.ok()) {
    IREDUCT_LOG(kError) << "census generation failed: "
                        << dataset.status().ToString();
    std::abort();
  }
  return cache->emplace(kind, std::move(*dataset)).first->second;
}

MarginalWorkload BuildKWayWorkload(CensusKind kind, int k) {
  const Dataset& dataset = GetCensus(kind);
  auto specs = AllKWaySpecs(dataset.schema(), k);
  if (!specs.ok()) std::abort();
  auto marginals = ComputeMarginals(dataset, *specs);
  if (!marginals.ok()) std::abort();
  auto mw = MarginalWorkload::Create(std::move(*marginals));
  if (!mw.ok()) std::abort();
  return std::move(mw).value();
}

std::vector<std::pair<std::string, MechanismFn>> PaperMechanisms(
    double epsilon, double delta, double lambda_max, double lambda_delta,
    double epsilon1_fraction) {
  std::vector<std::pair<std::string, MechanismFn>> mechanisms;
  mechanisms.emplace_back(
      "Oracle", [=](const Workload& w, BitGen& gen)
                    -> Result<std::vector<double>> {
        IREDUCT_ASSIGN_OR_RETURN(
            MechanismOutput out,
            RunOracle(w, OracleParams{epsilon, delta}, gen));
        return std::move(out.answers);
      });
  mechanisms.emplace_back(
      "iReduct", [=](const Workload& w, BitGen& gen)
                     -> Result<std::vector<double>> {
        IReductParams p;
        p.epsilon = epsilon;
        p.delta = delta;
        p.lambda_max = lambda_max;
        p.lambda_delta = lambda_delta;
        IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out, RunIReduct(w, p, gen));
        return std::move(out.answers);
      });
  mechanisms.emplace_back(
      "TwoPhase", [=](const Workload& w, BitGen& gen)
                      -> Result<std::vector<double>> {
        const TwoPhaseParams p{epsilon1_fraction * epsilon,
                               (1 - epsilon1_fraction) * epsilon, delta};
        IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out, RunTwoPhase(w, p, gen));
        return std::move(out.answers);
      });
  mechanisms.emplace_back(
      "iResamp", [=](const Workload& w, BitGen& gen)
                     -> Result<std::vector<double>> {
        IResampParams p;
        p.epsilon = epsilon;
        p.delta = delta;
        p.lambda_max = lambda_max;
        IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out, RunIResamp(w, p, gen));
        return std::move(out.answers);
      });
  mechanisms.emplace_back(
      "Dwork", [=](const Workload& w, BitGen& gen)
                   -> Result<std::vector<double>> {
        IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out,
                                 RunDwork(w, DworkParams{epsilon}, gen));
        return std::move(out.answers);
      });
  return mechanisms;
}

TrialAggregate MeasureOverallError(const Workload& workload,
                                   const MechanismFn& mechanism, double delta,
                                   uint64_t base_seed) {
  return RunTrials(Trials(), base_seed, [&](uint64_t seed) {
    BitGen gen(seed);
    IREDUCT_METRIC_COUNT("bench.mechanism_runs", 1);
    auto answers = mechanism(workload, gen);
    if (!answers.ok()) {
      IREDUCT_LOG(kError) << "mechanism failed: "
                          << answers.status().ToString();
      std::abort();
    }
    return OverallError(workload, *answers, delta);
  });
}

void RegisterStandardMetrics() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.counter("bench.mechanism_runs");
  registry.counter("ireduct.iterations");
  registry.counter("ireduct.group_retirements");
  registry.counter("ireduct.resample_draws");
  registry.counter("noise_down.samples");
  registry.counter("noise_down.rejection_rounds");
  registry.counter("noise_down.envelope_draws");
  registry.counter("privacy.charges");
  registry.gauge("privacy.epsilon_spent");
  registry.histogram("ireduct.run_seconds");
}

void EmitMetricsSnapshot(const std::string& bench_name) {
  RegisterStandardMetrics();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const char* out_path = std::getenv("BENCH_METRICS_OUT");
  if (out_path == nullptr || out_path[0] == '\0') {
    std::fprintf(
        stderr,
        "[bench] %s mechanism work: %llu runs, %llu iReduct iterations, "
        "%llu resample draws (set BENCH_METRICS_OUT=FILE for the full "
        "snapshot)\n",
        bench_name.c_str(),
        static_cast<unsigned long long>(
            registry.counter("bench.mechanism_runs").value()),
        static_cast<unsigned long long>(
            registry.counter("ireduct.iterations").value()),
        static_cast<unsigned long long>(
            registry.counter("ireduct.resample_draws").value()));
    return;
  }
  std::string blob;
  obs::JsonWriter json(&blob);
  json.BeginObject();
  json.KV("bench", bench_name);
  json.Key("metrics");
  json.RawValue(registry.SnapshotJson());
  json.EndObject();
  std::ofstream file(out_path, std::ios::binary | std::ios::trunc);
  file << blob << '\n';
  if (!file.flush()) {
    IREDUCT_LOG(kError) << "failed writing metrics snapshot to " << out_path;
    return;
  }
  std::fprintf(stderr, "[bench] wrote metrics snapshot to %s\n", out_path);
}

}  // namespace bench
}  // namespace ireduct
