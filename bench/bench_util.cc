#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "algorithms/dwork.h"
#include "algorithms/ireduct.h"
#include "algorithms/iresamp.h"
#include "algorithms/oracle.h"
#include "algorithms/two_phase.h"
#include "eval/metrics.h"
#include "marginals/marginal_set.h"

namespace ireduct {
namespace bench {

int Trials() { return static_cast<int>(EnvInt64("TRIALS", 3)); }

int IReductSteps() {
  return static_cast<int>(EnvInt64("IREDUCT_STEPS", 150));
}

uint64_t RowsFor(CensusKind kind) {
  const uint64_t brazil = EnvInt64("CENSUS_ROWS", 400'000);
  // The paper's datasets hold ~10M (Brazil) and ~14M (US) records.
  return kind == CensusKind::kBrazil ? brazil : brazil * 14 / 10;
}

std::string KindName(CensusKind kind) {
  return kind == CensusKind::kBrazil ? "Brazil" : "USA";
}

const Dataset& GetCensus(CensusKind kind) {
  static std::map<CensusKind, Dataset>* cache =
      new std::map<CensusKind, Dataset>();
  auto it = cache->find(kind);
  if (it != cache->end()) return it->second;
  CensusConfig config;
  config.kind = kind;
  config.rows = RowsFor(kind);
  config.seed = 2011 + static_cast<uint64_t>(kind);
  std::fprintf(stderr, "[bench] generating %llu %s-like census rows...\n",
               static_cast<unsigned long long>(config.rows),
               KindName(kind).c_str());
  auto dataset = GenerateCensus(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "census generation failed: %s\n",
                 dataset.status().ToString().c_str());
    std::abort();
  }
  return cache->emplace(kind, std::move(*dataset)).first->second;
}

MarginalWorkload BuildKWayWorkload(CensusKind kind, int k) {
  const Dataset& dataset = GetCensus(kind);
  auto specs = AllKWaySpecs(dataset.schema(), k);
  if (!specs.ok()) std::abort();
  auto marginals = ComputeMarginals(dataset, *specs);
  if (!marginals.ok()) std::abort();
  auto mw = MarginalWorkload::Create(std::move(*marginals));
  if (!mw.ok()) std::abort();
  return std::move(mw).value();
}

std::vector<std::pair<std::string, MechanismFn>> PaperMechanisms(
    double epsilon, double delta, double lambda_max, double lambda_delta,
    double epsilon1_fraction) {
  std::vector<std::pair<std::string, MechanismFn>> mechanisms;
  mechanisms.emplace_back(
      "Oracle", [=](const Workload& w, BitGen& gen)
                    -> Result<std::vector<double>> {
        IREDUCT_ASSIGN_OR_RETURN(
            MechanismOutput out,
            RunOracle(w, OracleParams{epsilon, delta}, gen));
        return std::move(out.answers);
      });
  mechanisms.emplace_back(
      "iReduct", [=](const Workload& w, BitGen& gen)
                     -> Result<std::vector<double>> {
        IReductParams p;
        p.epsilon = epsilon;
        p.delta = delta;
        p.lambda_max = lambda_max;
        p.lambda_delta = lambda_delta;
        IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out, RunIReduct(w, p, gen));
        return std::move(out.answers);
      });
  mechanisms.emplace_back(
      "TwoPhase", [=](const Workload& w, BitGen& gen)
                      -> Result<std::vector<double>> {
        const TwoPhaseParams p{epsilon1_fraction * epsilon,
                               (1 - epsilon1_fraction) * epsilon, delta};
        IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out, RunTwoPhase(w, p, gen));
        return std::move(out.answers);
      });
  mechanisms.emplace_back(
      "iResamp", [=](const Workload& w, BitGen& gen)
                     -> Result<std::vector<double>> {
        IResampParams p;
        p.epsilon = epsilon;
        p.delta = delta;
        p.lambda_max = lambda_max;
        IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out, RunIResamp(w, p, gen));
        return std::move(out.answers);
      });
  mechanisms.emplace_back(
      "Dwork", [=](const Workload& w, BitGen& gen)
                   -> Result<std::vector<double>> {
        IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out,
                                 RunDwork(w, DworkParams{epsilon}, gen));
        return std::move(out.answers);
      });
  return mechanisms;
}

TrialAggregate MeasureOverallError(const Workload& workload,
                                   const MechanismFn& mechanism, double delta,
                                   uint64_t base_seed) {
  return RunTrials(Trials(), base_seed, [&](uint64_t seed) {
    BitGen gen(seed);
    auto answers = mechanism(workload, gen);
    if (!answers.ok()) {
      std::fprintf(stderr, "mechanism failed: %s\n",
                   answers.status().ToString().c_str());
      std::abort();
    }
    return OverallError(workload, *answers, delta);
  });
}

}  // namespace bench
}  // namespace ireduct
