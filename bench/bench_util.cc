#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "common/env.h"
#include "common/simd.h"
#include "eval/metrics.h"
#include "eval/run_report.h"
#include "obs/event_log.h"
#include "marginals/marginal_cache.h"
#include "marginals/marginal_evaluator.h"
#include "marginals/marginal_set.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace ireduct {
namespace bench {

int Trials() { return static_cast<int>(EnvInt64("TRIALS", 3)); }

int IReductSteps() {
  return static_cast<int>(EnvInt64("IREDUCT_STEPS", 150));
}

uint64_t RowsFor(CensusKind kind) {
  const uint64_t brazil = EnvInt64("CENSUS_ROWS", 400'000);
  // The paper's datasets hold ~10M (Brazil) and ~14M (US) records.
  return kind == CensusKind::kBrazil ? brazil : brazil * 14 / 10;
}

std::string KindName(CensusKind kind) {
  return kind == CensusKind::kBrazil ? "Brazil" : "USA";
}

const Dataset& GetCensus(CensusKind kind) {
  static std::map<CensusKind, Dataset>* cache =
      new std::map<CensusKind, Dataset>();
  auto it = cache->find(kind);
  if (it != cache->end()) return it->second;
  CensusConfig config;
  config.kind = kind;
  config.rows = RowsFor(kind);
  config.seed = 2011 + static_cast<uint64_t>(kind);
  std::fprintf(stderr, "[bench] generating %llu %s-like census rows...\n",
               static_cast<unsigned long long>(config.rows),
               KindName(kind).c_str());
  auto dataset = GenerateCensus(config);
  if (!dataset.ok()) {
    IREDUCT_LOG(kError) << "census generation failed: "
                        << dataset.status().ToString();
    std::abort();
  }
  return cache->emplace(kind, std::move(*dataset)).first->second;
}

uint64_t GetCensusFingerprint(CensusKind kind) {
  static std::map<CensusKind, uint64_t>* cache =
      new std::map<CensusKind, uint64_t>();
  auto it = cache->find(kind);
  if (it != cache->end()) return it->second;
  const uint64_t fp = GetCensus(kind).Fingerprint();
  return cache->emplace(kind, fp).first->second;
}

ThreadPool* EvalPool() {
  const int threads = EnvThreads();
  if (threads <= 1) return nullptr;
  static ThreadPool* pool = new ThreadPool(threads);
  return pool;
}

MarginalWorkload BuildKWayWorkload(CensusKind kind, int k) {
  const Dataset& dataset = GetCensus(kind);
  auto specs = AllKWaySpecs(dataset.schema(), k);
  if (!specs.ok()) std::abort();
  // True tables come from the process-wide cache: one fused pass per
  // (dataset, spec set) per process, shared by every figure bench and
  // sweep point.
  auto marginals = MarginalCache::Global().GetOrCompute(
      GetCensusFingerprint(kind), dataset, *specs, EvalPool());
  if (!marginals.ok()) std::abort();
  auto mw = MarginalWorkload::Create(std::move(*marginals));
  if (!mw.ok()) std::abort();
  return std::move(mw).value();
}

CensusSetup BuildCensusSetup(CensusKind kind, int k) {
  const double n = static_cast<double>(GetCensus(kind).num_rows());
  return CensusSetup{kind, BuildKWayWorkload(kind, k), n, 1e-4 * n, n / 10,
                     (n / 10) / IReductSteps()};
}

CensusSetup BuildCensusSetupForRows(CensusKind kind, uint64_t rows, int k) {
  CensusConfig config;
  config.kind = kind;
  config.rows = rows;
  config.seed = 2011;
  auto dataset = GenerateCensus(config);
  if (!dataset.ok()) std::abort();
  auto specs = AllKWaySpecs(dataset->schema(), k);
  if (!specs.ok()) std::abort();
  // Fresh uncached dataset: fused pass (sharded on the eval pool), but no
  // cache entry — cardinality sweeps never revisit a row count.
  auto evaluator = MarginalSetEvaluator::Create(dataset->schema(), *specs);
  if (!evaluator.ok()) std::abort();
  auto marginals = evaluator->Compute(*dataset, {}, EvalPool());
  if (!marginals.ok()) std::abort();
  auto mw = MarginalWorkload::Create(std::move(*marginals));
  if (!mw.ok()) std::abort();
  const double n = static_cast<double>(rows);
  return CensusSetup{kind, std::move(mw).value(), n, 1e-4 * n, n / 10,
                     (n / 10) / IReductSteps()};
}

MechanismFn SpecMechanism(const MechanismSpec& spec) {
  // Resolve eagerly so a typo aborts at suite construction, not mid-sweep.
  auto mechanism = MechanismRegistry::Global().Get(spec.name());
  if (!mechanism.ok()) {
    IREDUCT_LOG(kError) << mechanism.status().ToString();
    std::abort();
  }
  if (Status s = (*mechanism)->ValidateSpec(spec); !s.ok()) {
    IREDUCT_LOG(kError) << s.ToString();
    std::abort();
  }
  return [spec](const Workload& w, BitGen& gen)
             -> Result<std::vector<double>> {
    IREDUCT_ASSIGN_OR_RETURN(MechanismOutput out,
                             MechanismRegistry::Global().Run(w, spec, gen));
    return std::move(out.answers);
  };
}

std::vector<std::pair<std::string, MechanismFn>> PaperMechanisms(
    double epsilon, double delta, double lambda_max, double lambda_delta,
    double epsilon1_fraction) {
  // (user spec text, label override) pairs; "" means use the display name.
  std::vector<MechanismSpec> specs;
  const char* env = std::getenv("BENCH_MECHANISMS");
  if (env != nullptr && *env != '\0') {
    std::string list(env);
    size_t start = 0;
    while (start <= list.size()) {
      const size_t semi = list.find(';', start);
      const std::string item = list.substr(
          start,
          semi == std::string::npos ? std::string::npos : semi - start);
      if (!item.empty()) {
        auto spec = MechanismSpec::Parse(item);
        if (!spec.ok()) {
          IREDUCT_LOG(kError) << "BENCH_MECHANISMS: "
                              << spec.status().ToString();
          std::abort();
        }
        specs.push_back(std::move(*spec));
      }
      if (semi == std::string::npos) break;
      start = semi + 1;
    }
  } else {
    for (const char* name :
         {"oracle", "ireduct", "two_phase", "iresamp", "dwork"}) {
      specs.emplace_back(std::string(name));
    }
  }

  std::vector<std::pair<std::string, MechanismFn>> mechanisms;
  for (MechanismSpec& spec : specs) {
    auto mechanism = MechanismRegistry::Global().Get(spec.name());
    if (!mechanism.ok()) {
      IREDUCT_LOG(kError) << mechanism.status().ToString();
      std::abort();
    }
    // Custom params label the row with the full spec so two variants of
    // one mechanism stay distinguishable in the tables.
    const std::string label = spec.params().empty()
                                  ? (*mechanism)->Describe().display_name
                                  : spec.ToString();
    (*mechanism)->SetSpecDefault(&spec, "epsilon", epsilon);
    (*mechanism)->SetSpecDefault(&spec, "delta", delta);
    (*mechanism)->SetSpecDefault(&spec, "lambda_max", lambda_max);
    // iReduct resolves lambda_delta in preference to lambda_steps, so a
    // default lambda_delta would shadow a spec-pinned lambda_steps.
    if (!spec.Has("lambda_steps")) {
      (*mechanism)->SetSpecDefault(&spec, "lambda_delta", lambda_delta);
    }
    (*mechanism)->SetSpecDefault(&spec, "epsilon1_fraction",
                                 epsilon1_fraction);
    mechanisms.emplace_back(label, SpecMechanism(spec));
  }
  return mechanisms;
}

TrialAggregate MeasureOverallError(const Workload& workload,
                                   const MechanismFn& mechanism, double delta,
                                   uint64_t base_seed) {
  return RunTrials(Trials(), base_seed, [&](uint64_t seed) {
    BitGen gen(seed);
    IREDUCT_METRIC_COUNT("bench.mechanism_runs", 1);
    auto answers = mechanism(workload, gen);
    if (!answers.ok()) {
      IREDUCT_LOG(kError) << "mechanism failed: "
                          << answers.status().ToString();
      std::abort();
    }
    return OverallError(workload, *answers, delta);
  });
}

namespace {

// First "model name" line of /proc/cpuinfo, or "unknown" off-Linux.
std::string CpuModelName() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
  return "unknown";
}

}  // namespace

void WriteHostInfo(obs::JsonWriter& writer) {
  writer.Key("host");
  writer.BeginObject();
  writer.KV("cpu_model", CpuModelName());
  writer.KV("hardware_concurrency",
            static_cast<uint64_t>(std::thread::hardware_concurrency()));
  writer.KV("simd_detected", simd::TierName(simd::DetectedTier()));
  writer.KV("simd_active", simd::TierName(simd::ActiveTier()));
#ifdef IREDUCT_BENCH_MARCH_FLAGS
  writer.KV("march_flags", IREDUCT_BENCH_MARCH_FLAGS);
#else
  writer.KV("march_flags", "unknown");
#endif
  writer.EndObject();
}

void RegisterStandardMetrics() {
  // The library owns the canonical schema; benches just make sure it is
  // registered before snapshotting so untouched metrics still show up.
  obs::RegisterStandardMetrics();
}

void EmitMetricsSnapshot(const std::string& bench_name) {
  RegisterStandardMetrics();
  // Every bench funnels through here, so BENCH_REPORT_OUT works for all of
  // them without per-bench wiring.
  EmitRunReport(bench_name);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const char* out_path = std::getenv("BENCH_METRICS_OUT");
  if (out_path == nullptr || out_path[0] == '\0') {
    std::fprintf(
        stderr,
        "[bench] %s mechanism work: %llu runs, %llu iReduct iterations, "
        "%llu resample draws (set BENCH_METRICS_OUT=FILE for the full "
        "snapshot)\n",
        bench_name.c_str(),
        static_cast<unsigned long long>(
            registry.counter("bench.mechanism_runs").value()),
        static_cast<unsigned long long>(
            registry.counter("ireduct.iterations").value()),
        static_cast<unsigned long long>(
            registry.counter("ireduct.resample_draws").value()));
    return;
  }
  std::string blob;
  obs::JsonWriter json(&blob);
  json.BeginObject();
  json.KV("bench", bench_name);
  WriteHostInfo(json);
  json.Key("metrics");
  json.RawValue(registry.SnapshotJson());
  json.EndObject();
  std::ofstream file(out_path, std::ios::binary | std::ios::trunc);
  file << blob << '\n';
  if (!file.flush()) {
    IREDUCT_LOG(kError) << "failed writing metrics snapshot to " << out_path;
    return;
  }
  std::fprintf(stderr, "[bench] wrote metrics snapshot to %s\n", out_path);
}

void EmitRunReport(const std::string& bench_name) {
  const char* out_path = std::getenv("BENCH_REPORT_OUT");
  if (out_path == nullptr || out_path[0] == '\0') return;
  RegisterStandardMetrics();
  RunReport report(bench_name);
  report.AttachMetrics();
  if (obs::EventLog* events = obs::EventLog::Get()) {
    report.AttachEvents(*events);
  }
  if (Status s = report.WriteFile(out_path); !s.ok()) {
    IREDUCT_LOG(kError) << "failed writing run report: " << s.ToString();
    return;
  }
  std::fprintf(stderr, "[bench] wrote run report to %s\n", out_path);
}

}  // namespace bench
}  // namespace ireduct
