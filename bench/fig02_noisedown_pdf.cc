// Figure 2 reproduction: the shape of the NoiseDown conditional density f
// (log scale on the y-axis), showing the piecewise-exponential tails and
// the "complex form" on (y-1, y+1) with kinks at ξ, y-1, y and y+1.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "dp/noise_down.h"
#include "eval/table_printer.h"

int main() {
  using namespace ireduct;

  // Representative parameters with μ < y - 1 so every segment is visible
  // (matching the paper's illustration, which marks ξ < y-1 < y < y+1).
  const double mu = 0.0, y = 2.5, lambda = 2.0, lambda_prime = 1.0;
  auto dist = NoiseDownDistribution::Create(mu, y, lambda, lambda_prime);
  if (!dist.ok()) {
    std::fprintf(stderr, "%s\n", dist.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 2: NoiseDown conditional pdf f(y' | Y=y)\n");
  std::printf("mu=%g  y=%g  lambda=%g  lambda'=%g\n", mu, y, lambda,
              lambda_prime);
  std::printf("landmarks: xi=%g  y-1=%g  y=%g  y+1=%g\n", dist->xi(), y - 1,
              y, y + 1);
  std::printf("segment masses: theta1=%.4f theta2=%.4f middle=%.4f "
              "theta3=%.4f (Z=%.6f)\n\n",
              dist->theta1(), dist->theta2(), dist->middle_mass(),
              dist->theta3(), dist->normalization());

  TablePrinter table({"y'", "f(y')", "log-scale bar"});
  for (double x = -6.0; x <= 8.0 + 1e-9; x += 0.25) {
    const double f = dist->Pdf(x);
    // ASCII rendition of the log-scale plot: 50 chars span 1e-4 .. 1.
    const double log_f = std::log10(std::max(f, 1e-4));
    const int bar = static_cast<int>((log_f + 4.0) / 4.0 * 50.0);
    table.AddRow({TablePrinter::Cell(x, 3), TablePrinter::Cell(f, 4),
                  std::string(std::max(bar, 0), '#')});
  }
  table.Print(std::cout);
  return 0;
}
