// Ablation: absolute-error-optimized publishing (the Hay-style hierarchy
// of Section 7's related work) vs iReduct — when does each structure pay?
//
// Part A — prefix-range workload over the Age histogram. Range queries
// overlap heavily, which is exactly the structure the hierarchy exploits:
// it answers any range from O(log n) noisy nodes. Since the workload now
// carries a linear view, the strategy mechanisms answer it through the
// histogram domain (W·x̂) via the shared runner — the full matrix
// mechanism, not a bespoke tree walk. Expectation: the hierarchy wins
// absolute AND relative error; iReduct's reallocation cannot compensate
// for an n-vs-log n sensitivity gap.
//
// Part B — the paper's own task: the *cells* of all nine 1D marginals.
// Point counts have no range structure to exploit; a per-marginal
// hierarchy (budget ε/9 each) pays 2·height/(ε/9) noise per node for
// structure nobody asked for, while iReduct spends the same ε directly
// and reallocates across marginals. Expectation: iReduct wins clearly —
// the Section 7 claim that absolute-error range machinery "would incur
// large relative errors for small counts" when adapted to marginals.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "algorithms/dwork.h"
#include "algorithms/ireduct.h"
#include "algorithms/mechanism_registry.h"
#include "algorithms/oracle.h"
#include "bench_util.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "marginals/marginal.h"
#include "common/logging.h"
#include "queries/range_workload.h"
#include "queries/strategy.h"

namespace {

using namespace ireduct;
using namespace ireduct::bench;

void PartAPrefixRanges(const Dataset& dataset) {
  auto age = Marginal::Compute(dataset, MarginalSpec{{kAge}});
  IREDUCT_CHECK(age.ok());
  const std::vector<double> histogram(age->counts().begin(),
                                      age->counts().end());
  const std::vector<BinRange> prefixes = PrefixRanges(histogram.size());
  auto workload = BuildRangeWorkload(histogram, prefixes);
  IREDUCT_CHECK(workload.ok());

  const double epsilon = 0.5;
  const double delta = 1e-4 * dataset.num_rows();
  const int trials = Trials() * 4;

  double dwork_abs = 0, dwork_rel = 0, tree_abs = 0, tree_rel = 0,
         wavelet_abs = 0, wavelet_rel = 0, ireduct_abs = 0, ireduct_rel = 0;
  for (int t = 0; t < trials; ++t) {
    BitGen gen(5000 + t);
    auto dw = RunDwork(*workload, DworkParams{epsilon}, gen);
    IREDUCT_CHECK(dw.ok());
    dwork_abs += MeanAbsoluteError(*workload, dw->answers) / trials;
    dwork_rel += OverallError(*workload, dw->answers, delta) / trials;

    auto tree = MechanismRegistry::Global().Run(
        *workload, "hierarchical:epsilon=0.5", gen);
    IREDUCT_CHECK(tree.ok());
    tree_abs += MeanAbsoluteError(*workload, tree->answers) / trials;
    tree_rel += OverallError(*workload, tree->answers, delta) / trials;

    auto wavelet = MechanismRegistry::Global().Run(
        *workload, "wavelet:epsilon=0.5", gen);
    IREDUCT_CHECK(wavelet.ok());
    wavelet_abs += MeanAbsoluteError(*workload, wavelet->answers) / trials;
    wavelet_rel += OverallError(*workload, wavelet->answers, delta) / trials;

    IReductParams p;
    p.epsilon = epsilon;
    p.delta = delta;
    p.lambda_max = 2.0 * workload->Sensitivity() / epsilon;
    p.lambda_delta = p.lambda_max / std::max<int>(IReductSteps(), 400);
    auto ir = RunIReduct(*workload, p, gen);
    IREDUCT_CHECK(ir.ok());
    ireduct_abs += MeanAbsoluteError(*workload, ir->answers) / trials;
    ireduct_rel += OverallError(*workload, ir->answers, delta) / trials;
  }

  TablePrinter table({"mechanism", "mean_abs_err", "overall_rel_err"});
  table.AddRow({"Dwork (flat)", TablePrinter::Cell(dwork_abs, 5),
                TablePrinter::Cell(dwork_rel, 5)});
  table.AddRow({"Hierarchical", TablePrinter::Cell(tree_abs, 5),
                TablePrinter::Cell(tree_rel, 5)});
  table.AddRow({"Privelet (wavelet)", TablePrinter::Cell(wavelet_abs, 5),
                TablePrinter::Cell(wavelet_rel, 5)});
  table.AddRow({"iReduct", TablePrinter::Cell(ireduct_abs, 5),
                TablePrinter::Cell(ireduct_rel, 5)});
  std::cout << "Part A: 101 prefix ranges over the Age histogram "
               "(eps=0.5) — range structure favors the hierarchy\n\n";
  table.Print(std::cout);
  std::cout << '\n';
}

void PartBMarginalCells() {
  const CensusSetup setup = BuildCensusSetup(CensusKind::kBrazil, 1);
  const MarginalWorkload& mw = setup.workload;
  const Workload& w = mw.workload();
  const double epsilon = 0.01;
  const double delta = setup.delta;
  const int trials = Trials() * 2;

  double dwork_rel = 0, tree_rel = 0, ireduct_rel = 0, oracle_rel = 0;
  for (int t = 0; t < trials; ++t) {
    BitGen gen(6000 + t);
    auto dw = RunDwork(w, DworkParams{epsilon}, gen);
    IREDUCT_CHECK(dw.ok());
    dwork_rel += OverallError(w, dw->answers, delta) / trials;

    // Per-marginal tree strategy with a uniform ε/|M| split; its
    // consistent leaves are the published cells (move semantics:
    // tuple_factor 2, the legacy hierarchical calibration).
    std::vector<double> tree_answers;
    const double eps_each = epsilon / mw.num_marginals();
    for (size_t m = 0; m < mw.num_marginals(); ++m) {
      const Strategy tree = Strategy::Tree(mw.marginal(m).num_cells());
      auto leaves = tree.Publish(mw.marginal(m).counts(), eps_each, 2.0,
                                 tree.row_multipliers(), gen);
      IREDUCT_CHECK(leaves.ok());
      tree_answers.insert(tree_answers.end(), leaves->begin(),
                          leaves->end());
    }
    tree_rel += OverallError(w, tree_answers, delta) / trials;

    IReductParams p;
    p.epsilon = epsilon;
    p.delta = delta;
    p.lambda_max = setup.lambda_max;
    p.lambda_delta = setup.lambda_delta;
    auto ir = RunIReduct(w, p, gen);
    IREDUCT_CHECK(ir.ok());
    ireduct_rel += OverallError(w, ir->answers, delta) / trials;

    auto oracle = RunOracle(w, OracleParams{epsilon, delta}, gen);
    IREDUCT_CHECK(oracle.ok());
    oracle_rel += OverallError(w, oracle->answers, delta) / trials;
  }

  TablePrinter table({"mechanism", "overall_rel_err"});
  table.AddRow({"Dwork (flat)", TablePrinter::Cell(dwork_rel, 5)});
  table.AddRow({"Tree strategy per marginal", TablePrinter::Cell(tree_rel,
                                                                 5)});
  table.AddRow({"iReduct", TablePrinter::Cell(ireduct_rel, 5)});
  table.AddRow({"Oracle (non-private)", TablePrinter::Cell(oracle_rel, 5)});
  std::cout << "Part B: cells of all nine 1D marginals (Brazil, eps=0.01) "
               "— point counts favor iReduct\n\n";
  table.Print(std::cout);
}

}  // namespace

int main() {
  PartAPrefixRanges(GetCensus(CensusKind::kBrazil));
  PartBMarginalCells();
  return 0;
}
