// Scaling studies (beyond the paper's plots).
//
// Section 1 — iReduct engine scaling: wall-clock of the full iReduct
// refinement loop, naive O(m) per-iteration engine vs the incremental
// engine (O(1) GS accounting + lazy-heap selection), on single-query
// per-group workloads with m in {10^2, 10^3, 10^4, 10^5}. Both engines
// run at the same seed; the bench fails (nonzero exit) if their
// epsilon_spent or overall error disagree, so the speedup numbers are
// guaranteed to compare identical outputs. Results are written to
// BENCH_IREDUCT_SCALING.json in the working directory.
//
// Section 2 — error vs dataset cardinality: how the overall error of the
// 1D-marginal task depends on |T| at fixed ε. The noise scale is set by ε
// alone, while the counts grow linearly with |T| and the sanity bound
// δ = 1e-4·|T| grows with them — so the overall error shrinks roughly
// like 1/|T|. This is the calibration behind EXPERIMENTS.md's note that
// our 4%-scale replicas produce ~25× larger absolute errors than the
// paper's 10M-row datasets with identical curve shapes.
//
// Environment knobs:
//   SCALING_IREDUCT_ONLY  nonzero → run only Section 1 (used by the
//                         tools/check.sh perf smoke).
//   SCALING_M             comma-separated list of group counts for
//                         Section 1 (default "100,1000,10000,100000").
//   NAIVE_MAX_M           largest m the naive engine is timed at
//                         (default 10000; naive is quadratic, so m=10^5
//                         would take minutes).
//   TRIALS                Section 2 runs averaged per point (default 3).
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/dwork.h"
#include "algorithms/ireduct.h"
#include "bench_util.h"
#include "common/logging.h"
#include "data/census_generator.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "marginals/marginal_set.h"
#include "marginals/marginal_workload.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace {

using namespace ireduct;

std::vector<size_t> ScalingSizes() {
  const char* env = std::getenv("SCALING_M");
  std::vector<size_t> sizes;
  if (env != nullptr && *env != '\0') {
    std::stringstream ss{std::string(env)};
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const long long v = std::atoll(tok.c_str());
      if (v > 0) sizes.push_back(static_cast<size_t>(v));
    }
  }
  if (sizes.empty()) sizes = {100, 1000, 10000, 100000};
  return sizes;
}

/// m single-query groups with deterministic answers spread over [1, 997].
Workload PerQueryWorkload(size_t m) {
  std::vector<double> answers(m);
  std::vector<QueryGroup> groups;
  groups.reserve(m);
  for (uint32_t i = 0; i < m; ++i) {
    answers[i] = 1.0 + static_cast<double>(i % 997);
    groups.push_back(QueryGroup{"q", i, i + 1, 1.0});
  }
  auto w = Workload::Create(std::move(answers), std::move(groups));
  IREDUCT_CHECK(w.ok());
  return std::move(*w);
}

struct EngineRun {
  double seconds = 0;
  double overall_error = 0;
  double epsilon_spent = 0;
  uint64_t iterations = 0;
};

EngineRun TimeEngine(const Workload& w, const IReductParams& params,
                     uint64_t seed, double delta) {
  BitGen gen(seed);
  const auto start = std::chrono::steady_clock::now();
  auto out = RunIReduct(w, params, gen);
  const auto stop = std::chrono::steady_clock::now();
  IREDUCT_CHECK(out.ok());
  EngineRun run;
  run.seconds = std::chrono::duration<double>(stop - start).count();
  run.overall_error = OverallError(w, out->answers, delta);
  run.epsilon_spent = out->epsilon_spent;
  run.iterations = out->iterations;
  return run;
}

/// Section 1. Returns false if the two engines' outputs ever disagree or
/// the incremental fast path demonstrably never engaged.
bool RunEngineScalingSection() {
  const size_t naive_max_m =
      static_cast<size_t>(EnvInt64("NAIVE_MAX_M", 10'000));
  const double lambda_max = 1000.0;
  const double delta = 1.0;
  const uint64_t seed = 42;

  bool ok = true;
  TablePrinter table({"m", "naive_s", "incremental_s", "speedup",
                      "overall_error", "epsilon_spent"});
  std::string json;
  obs::JsonWriter writer(&json);
  writer.BeginObject();
  writer.KV("bench", "ireduct_engine_scaling");
  bench::WriteHostInfo(writer);
  writer.Key("points");
  writer.BeginArray();

#if IREDUCT_ENABLE_TRACING
  const uint64_t hits_before =
      obs::MetricsRegistry::Global().counter("ireduct.gs_incremental_hits")
          .value();
#endif

  for (const size_t m : ScalingSizes()) {
    const Workload w = PerQueryWorkload(m);
    IReductParams params;
    // 25% budget slack over GS(λmax) = m/λmax leaves room for ~O(m)
    // admitted reductions — enough iterations to expose the per-iteration
    // cost gap without the naive engine taking hours at m = 10^5.
    params.epsilon = 1.25 * static_cast<double>(m) / lambda_max;
    params.delta = delta;
    params.lambda_max = lambda_max;
    params.lambda_delta = lambda_max / 20;

    const EngineRun fast = TimeEngine(w, params, seed, delta);

    EngineRun naive;
    const bool ran_naive = m <= naive_max_m;
    if (ran_naive) {
      IReductParams naive_params = params;
      naive_params.engine = IReductEngine::kNaive;
      naive = TimeEngine(w, naive_params, seed, delta);
      if (naive.epsilon_spent != fast.epsilon_spent ||
          naive.overall_error != fast.overall_error ||
          naive.iterations != fast.iterations) {
        std::cerr << "PARITY FAILURE at m=" << m
                  << ": naive (eps=" << naive.epsilon_spent
                  << ", err=" << naive.overall_error
                  << ", iters=" << naive.iterations << ") vs incremental"
                  << " (eps=" << fast.epsilon_spent
                  << ", err=" << fast.overall_error
                  << ", iters=" << fast.iterations << ")\n";
        ok = false;
      }
    }

    const double speedup = ran_naive && fast.seconds > 0
                               ? naive.seconds / fast.seconds
                               : 0.0;
    table.AddRow({std::to_string(m),
                  ran_naive ? TablePrinter::Cell(naive.seconds, 4) : "-",
                  TablePrinter::Cell(fast.seconds, 4),
                  ran_naive ? TablePrinter::Cell(speedup, 1) : "-",
                  TablePrinter::Cell(fast.overall_error, 5),
                  TablePrinter::Cell(fast.epsilon_spent, 5)});

    writer.BeginObject();
    writer.Key("m");
    writer.UInt(m);
    writer.Key("incremental_seconds");
    writer.Double(fast.seconds);
    writer.Key("iterations");
    writer.UInt(fast.iterations);
    writer.Key("overall_error");
    writer.Double(fast.overall_error);
    writer.Key("epsilon_spent");
    writer.Double(fast.epsilon_spent);
    writer.Key("naive_seconds");
    if (ran_naive) {
      writer.Double(naive.seconds);
    } else {
      writer.RawValue("null");
    }
    writer.Key("speedup");
    if (ran_naive) {
      writer.Double(speedup);
    } else {
      writer.RawValue("null");
    }
    writer.EndObject();
  }
  writer.EndArray();

#if IREDUCT_ENABLE_TRACING
  const uint64_t hits_after =
      obs::MetricsRegistry::Global().counter("ireduct.gs_incremental_hits")
          .value();
  if (hits_after <= hits_before) {
    std::cerr << "FAST-PATH FAILURE: ireduct.gs_incremental_hits did not "
                 "advance — the incremental engine was never selected\n";
    ok = false;
  }
  writer.Key("gs_incremental_hits");
  writer.UInt(hits_after - hits_before);
#endif
  writer.Key("parity_ok");
  writer.Bool(ok);
  writer.EndObject();

  std::ofstream out("BENCH_IREDUCT_SCALING.json");
  out << json << "\n";

  std::cout << "iReduct engine scaling: naive vs incremental at one seed "
               "(identical outputs enforced)\n\n";
  table.Print(std::cout);
  std::cout << "\nWrote BENCH_IREDUCT_SCALING.json\n\n";
  return ok;
}

void RunCardinalitySection() {
  const double epsilon = 0.01;
  const int trials = static_cast<int>(EnvInt64("TRIALS", 3));
  TablePrinter table({"rows", "method", "overall_error", "err x rows/1e5"});
  for (uint64_t rows : {50'000ull, 100'000ull, 200'000ull, 400'000ull,
                        800'000ull}) {
    const bench::CensusSetup setup =
        bench::BuildCensusSetupForRows(CensusKind::kBrazil, rows, 1);
    const Workload& w = setup.workload.workload();
    const double n = setup.n;
    const double delta = setup.delta;

    double dwork_err = 0, ireduct_err = 0;
    for (int t = 0; t < trials; ++t) {
      BitGen gen(7000 + t);
      auto dw = RunDwork(w, DworkParams{epsilon}, gen);
      IREDUCT_CHECK(dw.ok());
      dwork_err += OverallError(w, dw->answers, delta) / trials;
      IReductParams p;
      p.epsilon = epsilon;
      p.delta = delta;
      p.lambda_max = setup.lambda_max;
      p.lambda_delta = setup.lambda_delta;
      auto ir = RunIReduct(w, p, gen);
      IREDUCT_CHECK(ir.ok());
      ireduct_err += OverallError(w, ir->answers, delta) / trials;
    }
    table.AddRow({std::to_string(rows), "Dwork",
                  TablePrinter::Cell(dwork_err, 5),
                  TablePrinter::Cell(dwork_err * n / 1e5, 4)});
    table.AddRow({std::to_string(rows), "iReduct",
                  TablePrinter::Cell(ireduct_err, 5),
                  TablePrinter::Cell(ireduct_err * n / 1e5, 4)});
  }
  std::cout << "Scaling study: overall error vs |T| (1D marginals, "
               "eps=0.01, delta=1e-4*|T|)\n"
               "The last column being roughly constant confirms the ~1/|T| "
               "scaling used to compare\nagainst the paper's 10M-row "
               "datasets.\n\n";
  table.Print(std::cout);
}

}  // namespace

int main() {
  const bool engines_ok = RunEngineScalingSection();
  if (EnvInt64("SCALING_IREDUCT_ONLY", 0) == 0) {
    RunCardinalitySection();
  }
  return engines_ok ? 0 : 1;
}
