// Scaling study (beyond the paper's plots): how the overall error of the
// 1D-marginal task depends on the dataset cardinality |T| at fixed ε.
//
// The noise scale is set by ε alone, while the counts grow linearly with
// |T| and the sanity bound δ = 1e-4·|T| grows with them — so the overall
// error shrinks roughly like 1/|T|. This is the calibration behind
// EXPERIMENTS.md's note that our 4%-scale replicas produce ~25× larger
// absolute errors than the paper's 10M-row datasets with identical curve
// shapes.
#include <iostream>

#include "algorithms/dwork.h"
#include "algorithms/ireduct.h"
#include "common/logging.h"
#include "data/census_generator.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "marginals/marginal_set.h"
#include "marginals/marginal_workload.h"

int main() {
  using namespace ireduct;

  const double epsilon = 0.01;
  const int trials = static_cast<int>(EnvInt64("TRIALS", 3));
  TablePrinter table({"rows", "method", "overall_error", "err x rows/1e5"});
  for (uint64_t rows : {50'000ull, 100'000ull, 200'000ull, 400'000ull,
                        800'000ull}) {
    CensusConfig config;
    config.kind = CensusKind::kBrazil;
    config.rows = rows;
    config.seed = 2011;
    auto dataset = GenerateCensus(config);
    IREDUCT_CHECK(dataset.ok());
    auto specs = AllKWaySpecs(dataset->schema(), 1);
    IREDUCT_CHECK(specs.ok());
    auto marginals = ComputeMarginals(*dataset, *specs);
    IREDUCT_CHECK(marginals.ok());
    auto mw = MarginalWorkload::Create(std::move(*marginals));
    IREDUCT_CHECK(mw.ok());
    const double n = static_cast<double>(rows);
    const double delta = 1e-4 * n;

    double dwork_err = 0, ireduct_err = 0;
    for (int t = 0; t < trials; ++t) {
      BitGen gen(7000 + t);
      auto dw = RunDwork(mw->workload(), DworkParams{epsilon}, gen);
      IREDUCT_CHECK(dw.ok());
      dwork_err += OverallError(mw->workload(), dw->answers, delta) / trials;
      IReductParams p;
      p.epsilon = epsilon;
      p.delta = delta;
      p.lambda_max = n / 10;
      p.lambda_delta = p.lambda_max / 150;
      auto ir = RunIReduct(mw->workload(), p, gen);
      IREDUCT_CHECK(ir.ok());
      ireduct_err +=
          OverallError(mw->workload(), ir->answers, delta) / trials;
    }
    table.AddRow({std::to_string(rows), "Dwork",
                  TablePrinter::Cell(dwork_err, 5),
                  TablePrinter::Cell(dwork_err * n / 1e5, 4)});
    table.AddRow({std::to_string(rows), "iReduct",
                  TablePrinter::Cell(ireduct_err, 5),
                  TablePrinter::Cell(ireduct_err * n / 1e5, 4)});
  }
  std::cout << "Scaling study: overall error vs |T| (1D marginals, "
               "eps=0.01, delta=1e-4*|T|)\n"
               "The last column being roughly constant confirms the ~1/|T| "
               "scaling used to compare\nagainst the paper's 10M-row "
               "datasets.\n\n";
  table.Print(std::cout);
  return 0;
}
