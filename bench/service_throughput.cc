// Multi-tenant query service throughput: batched admission pipeline vs the
// classic per-request path, swept over tenant count.
//
// Setup: one QueryServer per (tenant count, mode) cell over the shared
// cached census dataset. Every tenant runs the same script — WAVES waves,
// each wave one all-1-way PublishMarginals release — with the waves
// submitted concurrently across tenants (queued while the dispatcher is
// paused, so the batched mode actually coalesces them into fused
// true-table passes sharing the process-wide MarginalCache). The unbatched
// mode dispatches the identical stream one request at a time through the
// per-spec full-dataset scan path — the architectural baseline.
//
// Parity is enforced, not assumed: every response from both modes is
// compared byte-for-byte (serialized MarginalReleaseToJson) against a
// serial per-tenant PrivateQuerySession run at the same seeds. Batching
// changes wall-clock only, never bytes; the bench exits nonzero on any
// divergence.
//
// The acceptance bar is batched throughput >= SERVICE_MIN_SPEEDUP x the
// unbatched throughput at the largest tenant count (default 1.5; 0
// disables). The speedup is architectural — shared scans and cache hits,
// not parallelism — so it holds on a single-core runner.
//
// Results land in BENCH_SERVICE.json in the working directory.
//
// Environment knobs:
//   CENSUS_ROWS          dataset size (default 400000).
//   SERVICE_TENANTS      comma-separated tenant counts (default "1,4,8").
//   SERVICE_WAVES        concurrent request waves per cell (default 4).
//   SERVICE_MIN_SPEEDUP  the gate; 0 disables (default 1.5).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "eval/table_printer.h"
#include "marginals/marginal_set.h"
#include "obs/json.h"
#include "service/query_server.h"
#include "service/wire.h"

namespace {

using namespace ireduct;

std::vector<int> IntList(const char* name, std::vector<int> fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  std::vector<int> values;
  std::stringstream ss{std::string(env)};
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const long long v = std::atoll(tok.c_str());
    if (v > 0) values.push_back(static_cast<int>(v));
  }
  return values.empty() ? fallback : values;
}

double EnvGate(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(env, &end);
  if (end == env || *end != '\0' || parsed < 0) return fallback;
  return parsed;
}

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  const long long v = std::atoll(env);
  return v > 0 ? static_cast<int>(v) : fallback;
}

double Seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The per-request script parameters — identical in every mode so responses
// are comparable byte-for-byte. The default mechanism is the Laplace
// baseline (dwork): its per-cell noise cost is negligible next to the
// true-table scans, so the bench isolates the admission pipeline's scan
// amortization rather than mechanism runtime (which is identical in every
// mode and would only dilute the contrast — swap in SERVICE_MECHANISM=
// ireduct to measure the mechanism-bound regime).
constexpr double kEpsilonPerWave = 0.1;
constexpr double kDelta = 5.0;
constexpr int kLambdaSteps = 60;

MechanismSpec ServiceMechanism() {
  const char* env = std::getenv("SERVICE_MECHANISM");
  return MechanismSpec(env != nullptr && *env != '\0' ? env : "dwork");
}

uint64_t TenantSeed(int tenant) { return 1000 + static_cast<uint64_t>(tenant); }

// Serial golden: each tenant's script against its own direct session, one
// tenant after another. This is the byte-level contract both server modes
// must reproduce.
std::vector<std::vector<std::string>> RunSerial(
    const Dataset& dataset, const std::vector<MarginalSpec>& specs,
    int tenants, int waves) {
  std::vector<std::vector<std::string>> out(tenants);
  for (int t = 0; t < tenants; ++t) {
    auto session = PrivateQuerySession::Create(
        &dataset, waves * kEpsilonPerWave + 1.0, TenantSeed(t));
    IREDUCT_CHECK(session.ok());
    for (int w = 0; w < waves; ++w) {
      auto release = session->PublishMarginals(
          specs, ServiceMechanism(), kEpsilonPerWave, kDelta,
          kLambdaSteps);
      IREDUCT_CHECK(release.ok());
      out[t].push_back(MarginalReleaseToJson(*release));
    }
  }
  return out;
}

struct ModeResult {
  double seconds = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  QueryServerStats stats;
  std::vector<std::vector<std::string>> responses;  // [tenant][wave]
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

ModeResult RunMode(const Dataset& dataset,
                   const std::vector<MarginalSpec>& specs, int tenants,
                   int waves, bool batched) {
  QueryServerConfig config;
  config.batching = batched;
  config.max_batch = 64;
  config.max_queue = static_cast<size_t>(4 * tenants + 16);
  config.max_inflight_per_tenant = waves + 1;
  auto server = QueryServer::Create(config);
  IREDUCT_CHECK(server.ok());
  IREDUCT_CHECK((*server)->AddDataset("census", dataset).ok());
  std::vector<std::string> names;
  for (int t = 0; t < tenants; ++t) {
    names.push_back("tenant" + std::to_string(t));
    IREDUCT_CHECK((*server)
                      ->OpenTenant(names.back(), "census",
                                   waves * kEpsilonPerWave + 1.0,
                                   TenantSeed(t))
                      .ok());
  }

  ModeResult result;
  result.responses.resize(tenants);
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(tenants) * waves);
  const auto run_start = std::chrono::steady_clock::now();
  for (int w = 0; w < waves; ++w) {
    // Queue the whole wave while the dispatcher is parked — the
    // coalescing window a loaded service sees naturally.
    (*server)->Pause();
    std::vector<std::future<Result<MarginalRelease>>> futures;
    futures.reserve(tenants);
    const auto wave_start = std::chrono::steady_clock::now();
    for (int t = 0; t < tenants; ++t) {
      futures.push_back((*server)->SubmitMarginals(
          names[t], specs, ServiceMechanism(), kEpsilonPerWave, kDelta,
          kLambdaSteps));
    }
    (*server)->Resume();
    // Phase B resolves strictly in admission order, so waiting in
    // submission order observes each completion as it happens.
    for (int t = 0; t < tenants; ++t) {
      auto release = futures[t].get();
      latencies.push_back(Seconds(wave_start) * 1e3);
      IREDUCT_CHECK(release.ok());
      result.responses[t].push_back(MarginalReleaseToJson(*release));
    }
  }
  result.seconds = Seconds(run_start);
  (*server)->Drain();
  result.stats = (*server)->Stats();
  result.qps = result.seconds > 0
                   ? static_cast<double>(tenants) * waves / result.seconds
                   : 0;
  result.p50_ms = Percentile(latencies, 0.50);
  result.p99_ms = Percentile(latencies, 0.99);
  return result;
}

void WriteMode(obs::JsonWriter& writer, const char* key,
               const ModeResult& mode) {
  writer.Key(key);
  writer.BeginObject();
  writer.Key("seconds");
  writer.Double(mode.seconds);
  writer.Key("qps");
  writer.Double(mode.qps);
  writer.Key("p50_ms");
  writer.Double(mode.p50_ms);
  writer.Key("p99_ms");
  writer.Double(mode.p99_ms);
  writer.KV("admitted", mode.stats.admitted);
  writer.KV("batches", mode.stats.batches);
  writer.KV("fused_passes", mode.stats.fused_passes);
  writer.KV("max_batch_width", mode.stats.max_batch_width);
  writer.EndObject();
}

}  // namespace

int main() {
  bench::RegisterStandardMetrics();
  const Dataset& dataset = bench::GetCensus(CensusKind::kBrazil);
  auto all_specs = AllKWaySpecs(dataset.schema(), 2);
  IREDUCT_CHECK(all_specs.ok());
  // Keep the workload scan-bound: drop the giant-domain pairs (Occupation x
  // Age alone is ~52k cells) whose per-cell noise and response
  // serialization — identical in every mode — would otherwise swamp the
  // dataset-scan cost that batching amortizes.
  auto specs = std::make_unique<std::vector<MarginalSpec>>();
  for (const MarginalSpec& spec : *all_specs) {
    uint64_t cells = 1;
    for (const uint32_t a : spec.attributes) {
      cells *= dataset.schema().attribute(a).domain_size;
    }
    if (cells <= 256) specs->push_back(spec);
  }
  IREDUCT_CHECK(!specs->empty());

  const std::vector<int> tenant_list = IntList("SERVICE_TENANTS", {1, 4, 8});
  const int waves = EnvInt("SERVICE_WAVES", 4);
  const double min_speedup = EnvGate("SERVICE_MIN_SPEEDUP", 1.5);

  std::string json;
  obs::JsonWriter writer(&json);
  writer.BeginObject();
  writer.KV("bench", "service_throughput");
  bench::WriteHostInfo(writer);
  writer.Key("rows");
  writer.UInt(dataset.num_rows());
  writer.Key("specs");
  writer.UInt(specs->size());
  writer.Key("waves");
  writer.UInt(static_cast<uint64_t>(waves));

  TablePrinter table({"tenants", "unbatched_qps", "batched_qps", "speedup",
                      "batched_p99_ms", "fused_passes"});
  bool parity_ok = true;
  double gate_speedup = 0;
  int gate_tenants = 0;
  writer.Key("cells");
  writer.BeginArray();
  for (const int tenants : tenant_list) {
    const auto golden = RunSerial(dataset, *specs, tenants, waves);
    ModeResult unbatched =
        RunMode(dataset, *specs, tenants, waves, /*batched=*/false);
    ModeResult batched =
        RunMode(dataset, *specs, tenants, waves, /*batched=*/true);
    const bool cell_parity =
        unbatched.responses == golden && batched.responses == golden;
    if (!cell_parity) {
      std::cerr << "PARITY FAILURE: server responses diverged from the "
                   "serial golden at "
                << tenants << " tenants\n";
      parity_ok = false;
    }
    const double speedup =
        unbatched.qps > 0 ? batched.qps / unbatched.qps : 0;
    if (tenants >= gate_tenants) {
      gate_tenants = tenants;
      gate_speedup = speedup;
    }
    table.AddRow({std::to_string(tenants), TablePrinter::Cell(unbatched.qps, 2),
                  TablePrinter::Cell(batched.qps, 2),
                  TablePrinter::Cell(speedup, 2),
                  TablePrinter::Cell(batched.p99_ms, 2),
                  std::to_string(batched.stats.fused_passes)});
    writer.BeginObject();
    writer.Key("tenants");
    writer.UInt(static_cast<uint64_t>(tenants));
    WriteMode(writer, "unbatched", unbatched);
    WriteMode(writer, "batched", batched);
    writer.Key("speedup");
    writer.Double(speedup);
    writer.Key("parity_ok");
    writer.Bool(cell_parity);
    writer.EndObject();
  }
  writer.EndArray();

  const bool speedup_ok = min_speedup <= 0 || gate_speedup >= min_speedup;
  writer.Key("gate_tenants");
  writer.UInt(static_cast<uint64_t>(gate_tenants));
  writer.Key("speedup_at_gate");
  writer.Double(gate_speedup);
  writer.Key("min_speedup");
  writer.Double(min_speedup);
  writer.Key("speedup_ok");
  writer.Bool(speedup_ok);
  writer.Key("parity_ok");
  writer.Bool(parity_ok);
  writer.EndObject();

  std::cout << "Multi-tenant service throughput: batched admission pipeline "
               "vs per-request dispatch ("
            << dataset.num_rows() << " rows, " << specs->size()
            << " specs/request, " << waves << " waves)\n\n";
  table.Print(std::cout);
  std::cout << "\nbatched speedup at " << gate_tenants
            << " tenants: " << gate_speedup << "x (required >= " << min_speedup
            << ")\n";
  if (!speedup_ok) {
    std::cerr << "SERVICE SPEEDUP FAILURE: " << gate_speedup
              << "x < required " << min_speedup << "x\n";
  }
  if (!parity_ok) {
    std::cerr << "SERVICE PARITY FAILURE: batched/unbatched responses must "
                 "be bit-identical to the serial run\n";
  }

  std::ofstream out("BENCH_SERVICE.json");
  out << json << "\n";
  std::cout << "Wrote BENCH_SERVICE.json\n";
  bench::EmitMetricsSnapshot("service_throughput");
  return speedup_ok && parity_ok ? 0 : 1;
}
