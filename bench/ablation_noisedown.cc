// Ablation: what does the NoiseDown correlation buy, and what does the
// exact atom coupling change?
//
// Part A runs the same noise-reduction schedule (λ: 100 -> 50 -> 25 ->
// 12.5) three ways and reports the accuracy of the final estimate together
// with the privacy charged for the whole sequence:
//   * paper NoiseDown       — correlated chain, pays ~1/λ_final;
//   * exact atom coupling   — correlated chain, pays exactly 1/λ_final;
//   * independent + combine — iResamp-style fresh samples merged by
//     inverse variance, pays Σ 1/λ_i ≈ 2/λ_final.
// The correlated chains match the single-shot Laplace(λ_final) error while
// paying half of what independent resampling pays.
//
// Part B swaps the resampler inside full iReduct runs on the 1D marginal
// task: the two correlated resamplers should be statistically
// indistinguishable in overall error.
#include <cmath>
#include <iostream>
#include <vector>

#include "algorithms/ireduct.h"
#include "bench_util.h"
#include "dp/laplace_coupling.h"
#include "dp/noise_down.h"
#include "eval/metrics.h"
#include "eval/stats.h"
#include "eval/table_printer.h"

int main() {
  using namespace ireduct;
  using namespace ireduct::bench;

  // --- Part A: one query, fixed reduction schedule. ---
  const double mu = 1000.0;
  const std::vector<double> schedule{100.0, 50.0, 25.0, 12.5};
  const int samples = 60'000;

  std::vector<double> paper(samples), coupled(samples), independent(samples);
  int sticks = 0;
  BitGen gen(7);
  for (int s = 0; s < samples; ++s) {
    // Correlated chains.
    double y_paper = mu + gen.Laplace(schedule[0]);
    double y_coupled = y_paper;
    for (size_t i = 1; i < schedule.size(); ++i) {
      auto a = NoiseDown(mu, y_paper, schedule[i - 1], schedule[i], gen);
      auto b =
          CoupledNoiseDown(mu, y_coupled, schedule[i - 1], schedule[i], gen);
      if (!a.ok() || !b.ok()) return 1;
      sticks += (*b == y_coupled);
      y_paper = *a;
      y_coupled = *b;
    }
    paper[s] = y_paper;
    coupled[s] = y_coupled;
    // Independent samples at the same scales, inverse-variance combined.
    double wsum = 0, wnorm = 0;
    for (double scale : schedule) {
      const double fresh = mu + gen.Laplace(scale);
      wsum += fresh / (scale * scale);
      wnorm += 1.0 / (scale * scale);
    }
    independent[s] = wsum / wnorm;
  }

  double indep_cost = 0;
  for (double scale : schedule) indep_cost += 1.0 / scale;
  const double final_scale = schedule.back();

  TablePrinter table({"strategy", "privacy_cost", "mean_abs_error",
                      "vs_Lap(final)"});
  auto add = [&](const char* name, double cost,
                 const std::vector<double>& estimates) {
    double mae = 0;
    for (double e : estimates) mae += std::fabs(e - mu) / estimates.size();
    table.AddRow({name, TablePrinter::Cell(cost, 4),
                  TablePrinter::Cell(mae, 4),
                  TablePrinter::Cell(mae / final_scale, 3)});
  };
  add("paper NoiseDown chain", 1.06 / final_scale, paper);
  add("exact coupling chain", 1.0 / final_scale, coupled);
  add("independent+combine", indep_cost, independent);
  std::cout << "Part A: equal reduction schedule (lambda 100->50->25->12.5, "
               "E|Lap| = scale)\n\n";
  table.Print(std::cout);
  std::cout << "coupling stick rate per step: "
            << static_cast<double>(sticks) /
                   (samples * (schedule.size() - 1))
            << "\n\n";

  // --- Part B: full iReduct with each resampler. ---
  const CensusSetup setup = BuildCensusSetup(CensusKind::kBrazil, 1);
  const double delta = setup.delta;
  TablePrinter part_b({"reducer", "overall_error", "stddev"});
  for (auto reducer : {NoiseReducer::kPaperNoiseDown,
                       NoiseReducer::kExactCoupling}) {
    MechanismSpec spec("ireduct");
    spec.Set("epsilon", 0.01);
    spec.Set("delta", delta);
    spec.Set("lambda_max", setup.lambda_max);
    spec.Set("lambda_delta", setup.lambda_delta);
    spec.Set("reducer", reducer == NoiseReducer::kPaperNoiseDown
                            ? "noise_down"
                            : "exact_coupling");
    const TrialAggregate agg = MeasureOverallError(
        setup.workload.workload(), SpecMechanism(spec), delta, 1100);
    part_b.AddRow({reducer == NoiseReducer::kPaperNoiseDown
                       ? "paper NoiseDown"
                       : "exact coupling",
                   TablePrinter::Cell(agg.mean, 5),
                   TablePrinter::Cell(agg.stddev, 3)});
  }
  std::cout << "Part B: iReduct on 1D marginals (Brazil, eps=0.01) with "
               "either resampler\n\n";
  part_b.Print(std::cout);
  return 0;
}
