// Evaluation-layer scaling study: the fused marginal evaluator and the
// true-answer cache vs the naive per-marginal scan loop.
//
// Section 1 — fused vs per-marginal: wall-clock of computing all k-way
// marginals over synthetic census data, swept over rows × marginal arity
// × thread count. Every fused result is compared bit-for-bit against
// per-spec Marginal::Compute; the bench exits nonzero on any mismatch,
// so the reported speedups always compare identical outputs.
//
// Section 2 — fig08/09 end-to-end: the exact true-table evaluation work
// the 2D figure bench performs (five CensusSetup constructions: Brazil
// and US for Figure 8, both again for Figure 9, Brazil once more for the
// runtime remark), timed on the historical path (a fresh per-marginal
// scan loop per setup) and on the engine path (fused passes + the
// process-wide MarginalCache, cleared first so the engine starts cold).
// The acceptance bar is a >= EVAL_MIN_SPEEDUP speedup (default 3).
//
// Results land in BENCH_EVAL.json in the working directory.
//
// Environment knobs:
//   EVAL_ROWS         comma-separated Section 1 row counts
//                     (default "50000,200000").
//   EVAL_THREADS      comma-separated Section 1 thread counts
//                     (default "1,2,8").
//   EVAL_E2E_THREADS  engine-path thread count for Section 2 (default 8).
//   EVAL_MIN_SPEEDUP  Section 2 failure threshold; 0 disables
//                     (default 3).
//   CENSUS_ROWS       Section 2 dataset size, as in every figure bench.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "data/census_generator.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "marginals/marginal_cache.h"
#include "marginals/marginal_evaluator.h"
#include "marginals/marginal_set.h"
#include "obs/json.h"

namespace {

using namespace ireduct;

std::vector<int> IntList(const char* name, std::vector<int> fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  std::vector<int> values;
  std::stringstream ss{std::string(env)};
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const long long v = std::atoll(tok.c_str());
    if (v > 0) values.push_back(static_cast<int>(v));
  }
  return values.empty() ? fallback : values;
}

// EVAL_MIN_SPEEDUP with "0 disables" semantics — EnvInt64 treats
// non-positive values as unset, which would turn an explicit 0 back into
// the default gate.
double MinSpeedup() {
  const char* env = std::getenv("EVAL_MIN_SPEEDUP");
  if (env == nullptr || *env == '\0') return 3;
  char* end = nullptr;
  const double parsed = std::strtod(env, &end);
  if (end == env || *end != '\0' || parsed < 0) return 3;
  return parsed;
}

double Seconds(const std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Per-marginal reference path: one Marginal::Compute scan per spec.
std::vector<Marginal> NaiveCompute(const Dataset& dataset,
                                   const std::vector<MarginalSpec>& specs) {
  std::vector<Marginal> out;
  out.reserve(specs.size());
  for (const MarginalSpec& spec : specs) {
    auto m = Marginal::Compute(dataset, spec);
    IREDUCT_CHECK(m.ok());
    out.push_back(std::move(*m));
  }
  return out;
}

bool BitIdentical(const std::vector<Marginal>& a,
                  const std::vector<Marginal>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].num_cells() != b[i].num_cells()) return false;
    if (std::memcmp(a[i].counts().data(), b[i].counts().data(),
                    a[i].num_cells() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

bool RunFusedSection(obs::JsonWriter& writer) {
  bool ok = true;
  TablePrinter table(
      {"rows", "arity", "threads", "naive_s", "fused_s", "speedup"});
  writer.Key("fused_vs_naive");
  writer.BeginArray();
  for (const int rows : IntList("EVAL_ROWS", {50'000, 200'000})) {
    CensusConfig config;
    config.rows = static_cast<uint64_t>(rows);
    config.seed = 2011;
    auto dataset = GenerateCensus(config);
    IREDUCT_CHECK(dataset.ok());
    for (const int arity : {1, 2}) {
      auto specs = AllKWaySpecs(dataset->schema(), arity);
      IREDUCT_CHECK(specs.ok());
      const auto naive_start = std::chrono::steady_clock::now();
      const std::vector<Marginal> reference = NaiveCompute(*dataset, *specs);
      const double naive_s = Seconds(naive_start);
      auto evaluator =
          MarginalSetEvaluator::Create(dataset->schema(), *specs);
      IREDUCT_CHECK(evaluator.ok());
      for (const int threads : IntList("EVAL_THREADS", {1, 2, 8})) {
        ThreadPool pool(threads);
        const auto fused_start = std::chrono::steady_clock::now();
        auto fused =
            evaluator->Compute(*dataset, {}, threads > 1 ? &pool : nullptr);
        const double fused_s = Seconds(fused_start);
        IREDUCT_CHECK(fused.ok());
        if (!BitIdentical(reference, *fused)) {
          std::cerr << "PARITY FAILURE: fused != per-marginal at rows="
                    << rows << " arity=" << arity << " threads=" << threads
                    << "\n";
          ok = false;
        }
        const double speedup = fused_s > 0 ? naive_s / fused_s : 0.0;
        table.AddRow({std::to_string(rows), std::to_string(arity),
                      std::to_string(threads),
                      TablePrinter::Cell(naive_s, 4),
                      TablePrinter::Cell(fused_s, 4),
                      TablePrinter::Cell(speedup, 2)});
        writer.BeginObject();
        writer.Key("rows");
        writer.UInt(static_cast<uint64_t>(rows));
        writer.Key("arity");
        writer.UInt(static_cast<uint64_t>(arity));
        writer.Key("threads");
        writer.UInt(static_cast<uint64_t>(threads));
        writer.Key("naive_seconds");
        writer.Double(naive_s);
        writer.Key("fused_seconds");
        writer.Double(fused_s);
        writer.Key("speedup");
        writer.Double(speedup);
        writer.EndObject();
      }
    }
  }
  writer.EndArray();
  std::cout << "Fused marginal evaluation vs per-marginal scans "
               "(bit-identical outputs enforced)\n\n";
  table.Print(std::cout);
  std::cout << '\n';
  return ok;
}

bool RunEndToEndSection(obs::JsonWriter& writer) {
  // The fig08/09 true-table evaluation sequence: Figure 8 builds Brazil
  // and US setups, Figure 9 builds both again, the runtime remark builds
  // Brazil a fifth time.
  const std::vector<CensusKind> sequence = {
      CensusKind::kBrazil, CensusKind::kUs, CensusKind::kBrazil,
      CensusKind::kUs, CensusKind::kBrazil};
  // Default the engine pool to the real core count (capped at 8): a pool
  // wider than the machine buys no parallelism, and the evaluator clamps
  // its shard count to hardware_concurrency anyway, so asking for more
  // only measures pool overhead.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const int threads = static_cast<int>(
      EnvInt64("EVAL_E2E_THREADS",
               static_cast<int64_t>(std::min(8u, hw))));

  // Force dataset generation out of both timed paths.
  for (CensusKind kind : {CensusKind::kBrazil, CensusKind::kUs}) {
    bench::GetCensus(kind);
  }

  const auto naive_start = std::chrono::steady_clock::now();
  size_t naive_tables = 0;
  for (CensusKind kind : sequence) {
    const Dataset& dataset = bench::GetCensus(kind);
    auto specs = AllKWaySpecs(dataset.schema(), 2);
    IREDUCT_CHECK(specs.ok());
    naive_tables += NaiveCompute(dataset, *specs).size();
  }
  const double naive_s = Seconds(naive_start);

  MarginalCache::Global().Clear();
  ThreadPool pool(threads);
  const auto engine_start = std::chrono::steady_clock::now();
  size_t engine_tables = 0;
  for (CensusKind kind : sequence) {
    const Dataset& dataset = bench::GetCensus(kind);
    auto specs = AllKWaySpecs(dataset.schema(), 2);
    IREDUCT_CHECK(specs.ok());
    auto marginals = MarginalCache::Global().GetOrCompute(
        bench::GetCensusFingerprint(kind), dataset, *specs,
        threads > 1 ? &pool : nullptr);
    IREDUCT_CHECK(marginals.ok());
    engine_tables += marginals->size();
  }
  const double engine_s = Seconds(engine_start);
  IREDUCT_CHECK(engine_tables == naive_tables);

  const double speedup = engine_s > 0 ? naive_s / engine_s : 0.0;
  const double min_speedup = MinSpeedup();
  const bool ok = min_speedup <= 0 || speedup >= min_speedup;

  writer.Key("fig08_09_end_to_end");
  writer.BeginObject();
  writer.Key("setups");
  writer.UInt(sequence.size());
  writer.Key("true_tables");
  writer.UInt(naive_tables);
  writer.Key("threads");
  writer.UInt(static_cast<uint64_t>(threads));
  writer.Key("naive_seconds");
  writer.Double(naive_s);
  writer.Key("engine_seconds");
  writer.Double(engine_s);
  writer.Key("speedup");
  writer.Double(speedup);
  writer.Key("min_speedup");
  writer.Double(min_speedup);
  writer.EndObject();

  std::cout << "fig08/09 end-to-end true-table evaluation (" << sequence.size()
            << " setups, " << naive_tables << " tables):\n  naive "
            << naive_s << " s, engine (fused + cache, " << threads
            << " threads) " << engine_s << " s -> " << speedup << "x\n";
  if (!ok) {
    std::cerr << "SPEEDUP FAILURE: " << speedup << "x < required "
              << min_speedup << "x\n";
  }
  return ok;
}

// Phase breakdown of one fig08/09-style release on the Brazil k=2 task:
// true-table evaluation, the noise mechanism itself, and post-processing
// back to marginal tables + error scoring. A runtime regression in the
// end-to-end number becomes attributable to a phase from BENCH_EVAL.json
// alone, without rerunning anything under a profiler.
void RunPhaseSection(obs::JsonWriter& writer) {
  MarginalCache::Global().Clear();  // time a cold true-table pass
  const auto true_table_start = std::chrono::steady_clock::now();
  bench::CensusSetup setup = bench::BuildCensusSetup(CensusKind::kBrazil, 2);
  const double true_table_s = Seconds(true_table_start);

  const double epsilon = 0.05;
  auto spec = MechanismSpec::Parse("ireduct");
  IREDUCT_CHECK(spec.ok());
  auto mechanism = MechanismRegistry::Global().Get("ireduct");
  IREDUCT_CHECK(mechanism.ok());
  (*mechanism)->SetSpecDefault(&spec.value(), "epsilon", epsilon);
  (*mechanism)->SetSpecDefault(&spec.value(), "delta", setup.delta);
  (*mechanism)->SetSpecDefault(&spec.value(), "lambda_max",
                               setup.lambda_max);
  (*mechanism)->SetSpecDefault(&spec.value(), "lambda_delta",
                               setup.lambda_delta);
  BitGen gen(2011);
  const auto noise_start = std::chrono::steady_clock::now();
  auto answers =
      bench::SpecMechanism(*spec)(setup.workload.workload(), gen);
  const double noise_s = Seconds(noise_start);
  IREDUCT_CHECK(answers.ok());

  const auto post_start = std::chrono::steady_clock::now();
  auto noisy = setup.workload.ToMarginals(*answers);
  IREDUCT_CHECK(noisy.ok());
  const double overall =
      OverallError(setup.workload.workload(), *answers, setup.delta);
  const double post_s = Seconds(post_start);

  writer.Key("phases");
  writer.BeginObject();
  writer.Key("rows");
  writer.UInt(static_cast<uint64_t>(setup.n));
  writer.Key("epsilon");
  writer.Double(epsilon);
  writer.Key("true_table_seconds");
  writer.Double(true_table_s);
  writer.Key("noise_seconds");
  writer.Double(noise_s);
  writer.Key("postprocess_seconds");
  writer.Double(post_s);
  writer.Key("overall_error");
  writer.Double(overall);
  writer.EndObject();

  std::cout << "phase breakdown (Brazil k=2, epsilon " << epsilon
            << "): true tables " << true_table_s << " s, noise " << noise_s
            << " s, post-process " << post_s << " s\n";
}

}  // namespace

int main() {
  std::string json;
  obs::JsonWriter writer(&json);
  writer.BeginObject();
  writer.KV("bench", "eval_engine_scaling");
  bench::WriteHostInfo(writer);
  const bool fused_ok = RunFusedSection(writer);
  const bool e2e_ok = RunEndToEndSection(writer);
  RunPhaseSection(writer);
  writer.Key("parity_ok");
  writer.Bool(fused_ok);
  writer.Key("end_to_end_ok");
  writer.Bool(e2e_ok);
  writer.EndObject();
  std::ofstream out("BENCH_EVAL.json");
  out << json << "\n";
  std::cout << "\nWrote BENCH_EVAL.json\n";
  bench::EmitMetricsSnapshot("eval_scaling");
  return fused_ok && e2e_ok ? 0 : 1;
}
